"""Sharded parallel scan execution with deterministic merge semantics.

The paper's real campaign splits its 28.2 B-target scan across machines
using zmap's sharding: shard *i* of *N* visits every *N*-th slot of the
cyclic-group permutation.  :class:`ShardedScanRunner` reproduces that for
the simulator and executes the shards concurrently — on a process pool
for large scans, a thread pool for small ones — while guaranteeing that
the merged result is **bit-for-bit identical** to a serial run of the
same seed and epoch.

Why determinism is non-trivial: the simulation engine is almost entirely
stateless per probe (loss, subnet liveness, reply sources are all stable
hashes of seed/target/epoch), *except* for the RFC 4443 token bucket and
its background-load gate, whose verdicts depend on the full time-ordered
sequence of error emissions per router — state that interleaves across
shards.  The runner therefore executes each shard with the rate limiter
*deferred* (every check is recorded as ``(time, router_id)`` and
provisionally allowed) and replays all recorded checks in global virtual
time order on a fresh engine at merge time.  Because every shard paces on
its global permutation position, the replay sees exactly the call
sequence a serial scan would have produced, so the same error records are
suppressed and the same counters come out.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..netsim.engine import EngineStats, SimulationEngine

if TYPE_CHECKING:
    # Import lazily: netsim.faults imports the backend seam (its
    # FaultyBackend is a ProbeBackend), so a module-level import here
    # would be circular.  ChaosEngine is only ever named in annotations.
    from ..netsim.faults import ChaosEngine
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.scan import (
    HotPathCollector,
    ScanTelemetry,
    ShardTelemetry,
    apply_suppression_correction,
    collector_events,
    merge_first_times,
    retract_record,
)
from ..topology.artifact import WorldRef, resolve_world_ref, world_payload
from ..topology.entities import World
from .backends import (
    ResilienceStats,
    RetryPolicy,
    backend_class,
    build_backend,
)
from .checkpoint import (
    ScanCheckpoint,
    config_key,
    load_checkpoint,
    restore_telemetry,
    save_checkpoint,
    snapshot_telemetry,
    target_fingerprint,
)
from .records import ScanResult, merge_results
from .shmring import (
    RingHandle,
    RingStats,
    drain_outcome,
    pack_outcome,
    release_outcome,
)
from .stream import RecordSink, StreamSpec, TargetStream, build_stream, stream_buffered
from .zmapv6 import ScanConfig, ZMapV6Scanner

__all__ = [
    "ScanInterrupted",
    "ShardFailedError",
    "ShardOutcome",
    "ShardedScanRunner",
    "auto_shard_count",
    "merge_shard_outcomes",
    "scan_shard",
]


class ScanInterrupted(RuntimeError):
    """The scan stopped on SIGINT/SIGTERM after flushing a checkpoint.

    Completed shards are salvaged in the journal at ``checkpoint_path``;
    re-running with ``resume`` finishes only the remaining shards.
    """

    def __init__(
        self, checkpoint_path: "Path | None", completed: int, remaining: int
    ) -> None:
        self.checkpoint_path = checkpoint_path
        self.completed = completed
        self.remaining = remaining
        where = (
            f"; {completed} completed shard(s) saved to {checkpoint_path}"
            if checkpoint_path is not None
            else ""
        )
        super().__init__(
            f"scan interrupted with {remaining} shard(s) outstanding{where}"
        )


class ShardFailedError(RuntimeError):
    """A shard kept failing past ``max_shard_retries``."""

    def __init__(
        self,
        shard: int,
        attempts: int,
        error: BaseException,
        checkpoint_path: "Path | None",
    ) -> None:
        self.shard = shard
        self.attempts = attempts
        self.error = error
        self.checkpoint_path = checkpoint_path
        salvage = (
            f" (completed shards salvaged in {checkpoint_path})"
            if checkpoint_path is not None
            else ""
        )
        super().__init__(
            f"shard {shard} failed {attempts} attempt(s): "
            f"{type(error).__name__}: {error}{salvage}"
        )

# Below this many targets a process pool costs more (world pickling, fork)
# than the scan itself; fall back to threads.
PROCESS_POOL_THRESHOLD = 16_384


def auto_shard_count(limit: int = 8) -> int:
    """A sensible default shard count for this machine."""
    return max(1, min(limit, os.cpu_count() or 1))


@dataclass(slots=True)
class ShardOutcome:
    """One shard's scan plus everything the merge needs to finish it."""

    shard: int
    result: ScanResult
    stats: EngineStats
    # Deferred rate-limit checks in shard probe order: (virtual time,
    # emitting router id).  Replayed globally at merge time.
    checks: list[tuple[float, int]]
    # Raw telemetry capture (progress events, per-shard metrics, first
    # loop sightings) when the scan ran with telemetry on; None otherwise.
    telemetry: ShardTelemetry | None = None
    # Denominator of this shard's index window (IndexWindow(shard, shards)):
    # the merge validates that outcomes tile the permutation exactly once.
    shards: int = 1
    # Shared-memory frame holding the records and checks while the outcome
    # crosses a process boundary (see repro.scanner.shmring).  Drained —
    # and cleared — in the parent before the merge or the checkpoint
    # journal ever touch the outcome.
    ring: RingHandle | None = None
    # The worker wanted the ring but had to fall back to pickling.
    ring_fallback: bool = False
    # Resilience delta (retries/timeouts/quarantines/breaker activity)
    # when the scan ran under a RetryPolicy; None otherwise.  Picklable —
    # the parent folds it into ops telemetry after the merge.
    resilience: "ResilienceStats | None" = None


def scan_shard(
    world: World,
    config: ScanConfig,
    targets: "Sequence[int] | TargetStream | StreamSpec",
    *,
    name: str,
    epoch: int,
    shard: int,
    shards: int,
    collect_telemetry: bool = False,
    chaos: ChaosEngine | None = None,
    attempt: int = 0,
) -> ShardOutcome:
    """Run one shard of a scan with the rate limiter deferred.

    Picklable by construction (module-level, plain-data arguments) so it
    can serve as the process-pool work function.  ``targets`` may be a
    :class:`~repro.scanner.stream.StreamSpec`, in which case the stream
    is rebuilt against ``world`` — the spec-plus-index-window protocol
    that keeps worker input O(1) in target count.

    ``config.batch_size`` is passed through unchanged, so shard scans run
    on the engine's batched hot path.  Batching composes with deferred
    rate limiting because both preserve per-shard probe order: the
    recorded ``(time, router_id)`` checks come out in exactly the order a
    per-probe scan would record them, which the merge replay relies on.
    """
    if isinstance(targets, StreamSpec):
        targets = build_stream(targets, world)
    if chaos is not None:
        # Fault injection arms here, inside the (possibly pooled) worker:
        # a planned crash for this (shard, attempt) fires at the exact
        # per-probe target access the plan names.
        chaos.delay_shard(shard)
        targets = chaos.wrap_targets(targets, shard, attempt)
    # The backend is rebuilt from config.backend_spec() around this
    # deferred engine — the config crossing the pickle boundary *is* the
    # backend transport, exactly like StreamSpec for targets and WorldRef
    # for worlds; no live backend is ever pickled.  Built explicitly
    # (rather than inside the scanner) so chaos can interpose transport
    # faults *under* the resilience wrapper the scanner adds on top —
    # the layering a flaky NIC would have.
    engine = SimulationEngine(world, epoch=epoch, defer_rate_limit=True)
    backend = build_backend(
        config.backend_spec(), world=world, engine=engine, epoch=epoch
    )
    if chaos is not None:
        backend = chaos.wrap_backend(backend, shard)
    scanner = ZMapV6Scanner(
        backend,
        replace(config, shard=shard, shards=shards),
        capture_telemetry=collect_telemetry,
    )
    result = scanner.scan(targets, name=f"{name}#s{shard}", epoch=epoch)
    capture = scanner.last_capture if collect_telemetry else None
    if capture is not None:
        # Progress events carry the shard-local result name; rewrite to
        # the campaign name so the merged stream reads uniformly (the
        # shard number is its own field).
        for event in capture.events:
            event["scan"] = name
    return ShardOutcome(
        shard=shard,
        result=result,
        stats=replace(scanner.backend.stats),
        checks=list(scanner.backend.pending_checks),
        telemetry=capture,
        shards=shards,
        resilience=scanner.last_resilience,
    )


def merge_shard_outcomes(
    world: World,
    outcomes: Iterable[ShardOutcome],
    *,
    name: str,
    epoch: int,
    telemetry: ScanTelemetry | None = None,
    targets_buffered: int = 0,
    sink: RecordSink | None = None,
    ring_stats: RingStats | None = None,
    backend: str = "sim",
) -> ScanResult:
    """Merge deferred-mode shards into the exact serial result.

    Replays every recorded rate-limit check in global virtual-time order
    on a fresh engine; checks the replay rejects drop their provisional
    error record and move from ``error_replies`` to ``suppressed_errors``.
    Records are then interleaved by probe time, which *is* the global
    permutation order.

    With ``telemetry`` the same corrections are applied to the merged
    metrics registry (retracting the dropped records), so the registry —
    like ``EngineStats`` — comes out identical to a serial run's.  The
    replay engine doubles as the authority for ``rate_limit_engaged``
    events: deferred shards never exercise the limiter, but the replay
    walks the exact serial check sequence.
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.shard)
    _validate_shard_windows(ordered)
    for outcome in ordered:
        # Outcomes that crossed a process boundary carry their records and
        # checks in a shared-memory frame; drain them here, in serial
        # shard order (no-op for thread/serial shards and for outcomes a
        # recovery round already drained).
        drain_outcome(outcome, ring_stats)
    # (time, shard, router_id, record indices at that time) — at most one
    # rate-limit check exists per probe, and probe times are unique, so
    # sorting by time alone reconstructs the serial check sequence.
    checks: list[tuple[float, int, int, tuple[int, ...]]] = []
    for outcome in ordered:
        error_rows: dict[float, list[int]] = {}
        for row, record in enumerate(outcome.result.records):
            if record.is_error:
                error_rows.setdefault(record.time, []).append(row)
        for time, router_id in outcome.checks:
            rows = tuple(error_rows.get(time, ()))
            checks.append((time, outcome.shard, router_id, rows))
    checks.sort(key=lambda check: check[0])

    replay = SimulationEngine(world, epoch=epoch)
    collector: HotPathCollector | None = None
    if telemetry is not None:
        collector = HotPathCollector()
        replay.telemetry = collector
    dropped: dict[int, set[int]] = {outcome.shard: set() for outcome in ordered}
    disallowed = 0
    for time, shard, router_id, rows in checks:
        if not replay.error_allowed(router_id, time):
            disallowed += 1
            dropped[shard].update(rows)

    results: list[ScanResult] = []
    dropped_records: list = []
    for outcome in ordered:
        doomed = dropped[outcome.shard]
        if doomed:
            if telemetry is not None:
                dropped_records.extend(
                    record
                    for row, record in enumerate(outcome.result.records)
                    if row in doomed
                )
            outcome.result.records = [
                record
                for row, record in enumerate(outcome.result.records)
                if row not in doomed
            ]
        outcome.result.engine_stats = outcome.stats
        results.append(outcome.result)

    merged = merge_results(name, results)
    merged.epoch = epoch
    # Probe times are distinct per probe and sorted() is stable, so records
    # of one probe keep their order while probes interleave serially.
    merged.records.sort(key=lambda record: record.time)
    if merged.engine_stats is not None:
        merged.engine_stats.error_replies -= disallowed
        merged.engine_stats.suppressed_errors += disallowed
    if sink is not None:
        # Shards must buffer their records for the replay correction, so
        # streaming drains here, post-merge — in exact serial order, and
        # before the closing telemetry so gauges see the drained state.
        sink.drain(merged.records)
        merged.records_streamed += len(merged.records)
        merged.records.clear()

    if telemetry is not None and collector is not None:
        _merge_telemetry(
            telemetry,
            ordered,
            merged,
            name=name,
            epoch=epoch,
            disallowed=disallowed,
            dropped_records=dropped_records,
            first_suppressed=dict(collector.first_suppressed),
            targets_buffered=targets_buffered,
            backend=backend,
        )
    return merged


def _validate_shard_windows(ordered: Sequence[ShardOutcome]) -> None:
    """Refuse to merge unless the outcomes tile the permutation exactly.

    Each outcome covers index window ``(shard, shards)`` — every
    ``shards``-th slot of the global permutation starting at ``shard``.
    The windows partition the target range iff every outcome agrees on
    the denominator and each shard index 0..shards-1 appears exactly
    once.  A silent gap (crashed shard never re-run) or overlap (shard
    retried into the same merge twice) would otherwise produce a
    plausible-looking but wrong merged result.
    """
    if not ordered:
        raise ValueError("no shard outcomes to merge")
    shards = ordered[0].shards
    seen: set[int] = set()
    for outcome in ordered:
        if outcome.shards != shards:
            raise ValueError(
                f"shard window mismatch: outcome for shard {outcome.shard} "
                f"covers window ({outcome.shard}, {outcome.shards}), other "
                f"outcomes use denominator {shards}"
            )
        if not 0 <= outcome.shard < shards:
            raise ValueError(
                f"shard window ({outcome.shard}, {shards}) is outside the "
                f"permutation: shard index must be in [0, {shards})"
            )
        if outcome.shard in seen:
            raise ValueError(
                f"overlapping shard windows: shard {outcome.shard} of "
                f"{shards} appears more than once in the merge"
            )
        seen.add(outcome.shard)
    missing = sorted(set(range(shards)) - seen)
    if missing:
        raise ValueError(
            f"shard windows leave gaps: missing shard(s) {missing} of "
            f"{shards}; refusing to merge a partial scan"
        )


def _merge_telemetry(
    telemetry: ScanTelemetry,
    ordered: Sequence[ShardOutcome],
    merged: ScanResult,
    *,
    name: str,
    epoch: int,
    disallowed: int,
    dropped_records: list,
    first_suppressed: dict[int, float],
    targets_buffered: int = 0,
    backend: str = "sim",
) -> None:
    """Fold per-shard captures into the facade, shard-count invariantly.

    Registry: sum of shard registries, minus the replay's corrections —
    provably the serial registry.  Events: shard progress streams plus
    loop/rate-limit first sightings (earliest time across shards wins),
    sorted globally by virtual time; then one ``shard_finished`` per
    shard and the closing ``scan_finished``.
    """
    captures = [outcome.telemetry for outcome in ordered]
    registry = MetricsRegistry()
    body: list[dict] = []
    for capture in captures:
        if capture is None:
            continue
        registry.merge(capture.registry)
        body.extend(capture.events)
    apply_suppression_correction(registry, disallowed)
    for record in dropped_records:
        retract_record(registry, record)
    first_loop = merge_first_times(
        capture.first_loop for capture in captures if capture is not None
    )
    body.extend(
        collector_events(
            scan=name,
            epoch=epoch,
            first_loop=first_loop,
            first_suppressed=first_suppressed,
        )
    )
    telemetry.emit_sorted(body)
    for outcome in ordered:
        result = outcome.result
        telemetry.shard_finished(
            scan=name,
            epoch=epoch,
            shard=outcome.shard,
            sent=result.sent,
            records=len(result.records),
            lost=result.lost,
            loops=result.loops_observed,
            duration=result.duration,
        )
    telemetry.merge_registry(registry)
    telemetry.scan_finished(
        scan=name, epoch=epoch, result=merged, targets_buffered=targets_buffered
    )
    telemetry.unmatched_replies_recorded(
        scan=name,
        epoch=epoch,
        backend=backend,
        count=merged.unmatched_replies,
    )
    for outcome in ordered:
        # Per-shard resilience deltas, in shard order (ops channel only;
        # None/empty deltas are skipped inside the facade).
        telemetry.backend_resilience_recorded(
            scan=name,
            epoch=epoch,
            shard=outcome.shard,
            stats=outcome.resilience,
        )


def _release_ring_futures(futures: Iterable[Future]) -> None:
    """Unlink ring frames of completed-but-unconsumed shard futures.

    Called on the failure/interrupt paths: a frame nobody drains outlives
    the process in ``/dev/shm``.  Best-effort — still-running shards (an
    interrupt does not wait for them) clean up only at machine scope.
    """
    for future in futures:
        if future.done() and not future.cancelled():
            try:
                outcome = future.result()
            except BaseException:
                continue
            release_outcome(outcome)


# ---------------------------------------------------------------------- #
# process-pool plumbing: ship world + targets once per worker, not once
# per shard task.  Artifact-backed worlds don't ship at all — the
# initializer receives a WorldRef (path + fingerprint, O(KB) pickled) and
# each worker mmaps the artifact, sharing its pages with every sibling.
# ---------------------------------------------------------------------- #

_WORKER_WORLD: World | None = None
_WORKER_TARGETS: Sequence[int] | None = None


def _init_worker(
    world: "World | WorldRef", targets: "Sequence[int] | StreamSpec"
) -> None:
    global _WORKER_WORLD, _WORKER_TARGETS
    if isinstance(world, WorldRef):
        world = resolve_world_ref(world)
    _WORKER_WORLD = world
    if isinstance(targets, StreamSpec):
        # Spec-shipped streams are rebuilt once per worker process; the
        # pickled payload is a few hundred bytes regardless of target
        # count, instead of the target list itself.
        targets = build_stream(targets, world)
    _WORKER_TARGETS = targets


def _worker_scan_shard(
    config: ScanConfig,
    name: str,
    epoch: int,
    shard: int,
    shards: int,
    collect_telemetry: bool = False,
    chaos: ChaosEngine | None = None,
    attempt: int = 0,
) -> ShardOutcome:
    assert _WORKER_WORLD is not None and _WORKER_TARGETS is not None
    outcome = scan_shard(
        _WORKER_WORLD,
        config,
        _WORKER_TARGETS,
        name=name,
        epoch=epoch,
        shard=shard,
        shards=shards,
        collect_telemetry=collect_telemetry,
        chaos=chaos,
        attempt=attempt,
    )
    # Ship the records and checks through a shared-memory frame instead of
    # the pool's pickled-result channel; on platforms without shared
    # memory this no-ops and the ordinary pickle return does the job.
    pack_outcome(outcome)
    return outcome


class ShardedScanRunner:
    """Drop-in scan executor: splits a scan across shards, runs them
    concurrently, and merges deterministically.

    ``runner.scan(targets, config, name=..., epoch=...)`` returns the same
    :class:`ScanResult` a single :class:`ZMapV6Scanner` would — same
    records in the same order, same counters — regardless of shard count
    or executor choice.  ``config.shard``/``config.shards`` are overridden
    per shard; the runner's ``shards`` is authoritative.

    Executors: ``"process"`` (true parallelism; pays world pickling),
    ``"thread"`` (cheap start-up, good for small scans), ``"serial"``
    (in-process, for debugging), ``"auto"`` (process above
    :data:`PROCESS_POOL_THRESHOLD` targets on multi-core hosts, threads
    otherwise).

    Crash tolerance: with a checkpoint path (or ``checkpoint_dir``), a
    retry budget (``max_shard_retries``), or a :class:`ChaosEngine`, the
    scan runs in *recovery mode* — every shard (even at ``shards=1``)
    goes through the deferred-replay pipeline, a journal is flushed after
    each completed shard, failed shards are retried on a fresh pool with
    bounded exponential backoff, and SIGINT/SIGTERM salvage completed
    shards into a final checkpoint (:class:`ScanInterrupted`).  A resumed
    scan re-runs only the missing index windows and merges to the exact
    bytes an uninterrupted run produces.
    """

    def __init__(
        self,
        world: World,
        *,
        shards: int | None = None,
        executor: str = "auto",
        max_workers: int | None = None,
        process_threshold: int = PROCESS_POOL_THRESHOLD,
        telemetry: ScanTelemetry | None = None,
        max_shard_retries: int = 0,
        retry_backoff: float = 0.1,
        retry_backoff_cap: float = 5.0,
        checkpoint_dir: "str | Path | None" = None,
        chaos: ChaosEngine | None = None,
        sleep: "Callable[[float], None]" = time.sleep,
    ) -> None:
        if executor not in ("auto", "process", "thread", "serial"):
            raise ValueError(
                "executor must be one of auto/process/thread/serial"
            )
        if max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        self.world = world
        self.shards = auto_shard_count() if shards is None else shards
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        self.executor = executor
        self.max_workers = max_workers
        self.process_threshold = process_threshold
        self.telemetry = telemetry
        self.max_shard_retries = max_shard_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        # Injectable so fault-injection tests drive the retry loop in
        # zero wall-time; the schedule itself comes from RetryPolicy's
        # backoff math (jitter 0 = the historical formula, bit for bit).
        self._sleep = sleep
        self._retry_schedule = RetryPolicy(
            max_retries=max_shard_retries,
            backoff=retry_backoff,
            backoff_cap=retry_backoff_cap,
        )
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.chaos = chaos
        # Shared-memory transport counters, accumulated across every scan
        # this runner executes (exported as a CI artifact by smoke-perf).
        self.ring_stats = RingStats()
        self._interrupted = False

    def request_interrupt(self) -> None:
        """Ask a recovery-mode scan to stop after the in-flight round,
        flush a final checkpoint, and raise :class:`ScanInterrupted`.
        Signal handlers and tests call this; safe from any thread."""
        self._interrupted = True

    def scan(
        self,
        targets: Sequence[int] | Iterable[int],
        config: ScanConfig | None = None,
        *,
        name: str = "scan",
        epoch: int = 0,
        telemetry: ScanTelemetry | None = None,
        sink: RecordSink | None = None,
        checkpoint: "str | Path | None" = None,
        resume: bool = False,
        chaos: ChaosEngine | None = None,
    ) -> ScanResult:
        """See :meth:`_scan`; this wrapper also folds the scan's
        shared-memory transport deltas into the telemetry ops channel
        (``sra_scan_ring_*`` counters), win or lose."""
        effective = telemetry if telemetry is not None else self.telemetry
        before = self.ring_stats.as_dict()
        try:
            return self._scan(
                targets,
                config,
                name=name,
                epoch=epoch,
                telemetry=telemetry,
                sink=sink,
                checkpoint=checkpoint,
                resume=resume,
                chaos=chaos,
            )
        finally:
            if effective is not None:
                after = self.ring_stats.as_dict()
                effective.ring_stats_updated(
                    scan=name,
                    epoch=epoch,
                    stats={
                        key: after[key] - before[key] for key in after
                    },
                )

    def _scan(
        self,
        targets: Sequence[int] | Iterable[int],
        config: ScanConfig | None = None,
        *,
        name: str = "scan",
        epoch: int = 0,
        telemetry: ScanTelemetry | None = None,
        sink: RecordSink | None = None,
        checkpoint: "str | Path | None" = None,
        resume: bool = False,
        chaos: ChaosEngine | None = None,
    ) -> ScanResult:
        """Scan all targets across ``self.shards`` shards and merge.

        ``telemetry`` (per call, falling back to the runner default)
        receives the event stream and the merged metrics; both come out
        shard-count invariant except for the per-shard ``progress`` /
        ``shard_finished`` events.

        ``sink`` streams records out instead of buffering them on the
        returned result.  With one shard the scanner emits each record as
        it is matched; with several, shards must still buffer their
        records for the deferred rate-limit replay, so the sink is
        drained once after the merge (the memory win there is on the
        target side, via spec-shipped streams).  Either way the sink sees
        the records in exact serial order and the returned result carries
        them in ``records_streamed`` instead of ``records``.

        ``checkpoint`` names the journal file for this scan (overriding
        the runner's ``checkpoint_dir`` naming); ``resume`` loads it if
        present and re-runs only the missing shards (a ``checkpoint_dir``
        journal auto-resumes).  Either option — or a retry budget or
        ``chaos`` plan on the runner — switches the scan into recovery
        mode (see the class docstring).
        """
        config = config or ScanConfig()
        spec = config.backend_spec()
        if not backend_class(spec.name, module=spec.module).deterministic:
            # The whole runner contract — deferred replay, checkpoints,
            # byte-identical merges — presumes reproducible probes.
            raise ValueError(
                f"backend {config.backend!r} is not deterministic; the "
                "sharded runner cannot merge or resume it (drive a "
                "ZMapV6Scanner directly instead)"
            )
        effective = telemetry if telemetry is not None else self.telemetry
        chaos = chaos if chaos is not None else self.chaos
        target_list = (
            targets
            if isinstance(targets, (list, tuple, TargetStream))
            else list(targets)
        )
        checkpoint_path = self._checkpoint_path(checkpoint, name, epoch)
        if checkpoint is not None and self.checkpoint_dir is None:
            auto_resume = resume
        else:
            # checkpoint_dir journals auto-resume: a file left behind means
            # an interrupted scan, and resuming is always byte-safe.
            auto_resume = resume or self.checkpoint_dir is not None
        if (
            checkpoint_path is not None
            or self.max_shard_retries > 0
            or chaos is not None
        ):
            return self._scan_with_recovery(
                target_list,
                config,
                name=name,
                epoch=epoch,
                telemetry=effective,
                sink=sink,
                checkpoint_path=checkpoint_path,
                resume=auto_resume,
                chaos=chaos,
            )
        if self.shards == 1:
            engine = SimulationEngine(self.world, epoch=epoch)
            scanner = ZMapV6Scanner(
                engine,
                replace(config, shard=0, shards=1),
                telemetry=effective,
            )
            return scanner.scan(target_list, name=name, epoch=epoch, sink=sink)
        if effective is not None:
            effective.scan_started(
                scan=name,
                epoch=epoch,
                targets=len(target_list),
                shards=self.shards,
                pps=config.pps,
            )
            effective.backend_selected(
                scan=name, epoch=epoch, backend=config.backend
            )
        outcomes = self._run_shards(
            target_list,
            config,
            name,
            epoch,
            collect_telemetry=effective is not None,
        )
        return merge_shard_outcomes(
            self.world,
            outcomes,
            name=name,
            epoch=epoch,
            telemetry=effective,
            targets_buffered=stream_buffered(target_list),
            sink=sink,
            ring_stats=self.ring_stats,
            backend=config.backend,
        )

    # ---------------- execution strategies ---------------- #

    def _resolve_executor(self, size: int) -> str:
        if self.executor != "auto":
            return self.executor
        if size >= self.process_threshold and (os.cpu_count() or 1) > 1:
            return "process"
        return "thread"

    def _run_shards(
        self,
        target_list: Sequence[int],
        config: ScanConfig,
        name: str,
        epoch: int,
        *,
        collect_telemetry: bool = False,
    ) -> list[ShardOutcome]:
        mode = self._resolve_executor(len(target_list))
        if mode == "serial":
            return [
                scan_shard(
                    self.world,
                    config,
                    target_list,
                    name=name,
                    epoch=epoch,
                    shard=shard,
                    shards=self.shards,
                    collect_telemetry=collect_telemetry,
                )
                for shard in range(self.shards)
            ]
        workers = self.max_workers or min(
            self.shards, (os.cpu_count() or 1) if mode == "process" else self.shards
        )
        if mode == "process":
            # Streams with a picklable recipe ship that recipe instead of
            # their data: each worker rebuilds the stream from the world
            # it already received, keeping the task payload O(1).
            payload: Sequence[int] | StreamSpec = target_list
            if isinstance(target_list, TargetStream):
                spec = target_list.spec()
                if spec is not None:
                    payload = spec
            pool: Executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(world_payload(self.world), payload),
            )
            with pool:
                futures = [
                    pool.submit(
                        _worker_scan_shard,
                        config,
                        name,
                        epoch,
                        shard,
                        self.shards,
                        collect_telemetry,
                    )
                    for shard in range(self.shards)
                ]
                try:
                    return [future.result() for future in futures]
                except BaseException:
                    # A failed shard aborts the scan before the merge can
                    # drain the others' frames; unlink them or they leak.
                    _release_ring_futures(futures)
                    raise
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    scan_shard,
                    self.world,
                    config,
                    target_list,
                    name=name,
                    epoch=epoch,
                    shard=shard,
                    shards=self.shards,
                    collect_telemetry=collect_telemetry,
                )
                for shard in range(self.shards)
            ]
            return [future.result() for future in futures]

    # ---------------- crash-tolerant execution ---------------- #

    def _checkpoint_path(
        self, checkpoint: "str | Path | None", name: str, epoch: int
    ) -> Path | None:
        """Resolve where this scan journals: an explicit path wins,
        otherwise ``checkpoint_dir`` names one file per (scan, epoch)."""
        if checkpoint is not None:
            return Path(checkpoint)
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            safe = name.replace(os.sep, "_")
            return self.checkpoint_dir / f"{safe}-epoch{epoch}.ckpt"
        return None

    @contextmanager
    def _signal_guard(self):
        """Route SIGINT/SIGTERM to a graceful interrupt while a recovery
        scan runs (main thread only; restores handlers on exit)."""
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous = {}

        def handler(signum, frame):  # pragma: no cover - signal delivery
            self._interrupted = True

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        try:
            yield
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)

    def _scan_with_recovery(
        self,
        target_list: Sequence[int],
        config: ScanConfig,
        *,
        name: str,
        epoch: int,
        telemetry: ScanTelemetry | None,
        sink: RecordSink | None,
        checkpoint_path: Path | None,
        resume: bool,
        chaos: ChaosEngine | None,
    ) -> ScanResult:
        """The crash-tolerant scan loop: journal, retry, salvage, merge.

        Every shard runs through the deferred-replay pipeline (even at
        ``shards=1``, so checkpoint/resume and the plain run share one
        code path and one byte-level outcome).  After each completed
        shard the journal is rewritten atomically; failed shards retry on
        a fresh pool with bounded exponential backoff; an interrupt
        flushes a final checkpoint and raises :class:`ScanInterrupted`.
        """
        shards = self.shards
        scan_key = config_key(config)
        target_count = len(target_list)
        fingerprint = target_fingerprint(target_list)
        spec = (
            target_list.spec() if isinstance(target_list, TargetStream) else None
        )
        collect = telemetry is not None

        outcomes: dict[int, ShardOutcome] = {}
        resumed = False
        if checkpoint_path is not None and resume and checkpoint_path.exists():
            journal = load_checkpoint(checkpoint_path)
            journal.validate_resume(
                name=name,
                epoch=epoch,
                shards=shards,
                scan_key=scan_key,
                target_count=target_count,
                fingerprint=fingerprint,
            )
            outcomes = dict(journal.outcomes)
            resumed = True
            if telemetry is not None:
                if journal.telemetry is not None:
                    restore_telemetry(telemetry, journal.telemetry)
                telemetry.scan_resumed(
                    scan=name,
                    epoch=epoch,
                    completed=len(outcomes),
                    remaining=shards - len(outcomes),
                )
        if telemetry is not None and not resumed:
            telemetry.scan_started(
                scan=name,
                epoch=epoch,
                targets=target_count,
                shards=shards,
                pps=config.pps,
            )
            telemetry.backend_selected(
                scan=name, epoch=epoch, backend=config.backend
            )

        def flush() -> None:
            if checkpoint_path is None:
                return
            snapshot = (
                snapshot_telemetry(telemetry) if telemetry is not None else None
            )
            sink_offset = None
            if sink is not None:
                byte_offset = getattr(sink, "byte_offset", None)
                if callable(byte_offset):
                    sink_offset = byte_offset()
            save_checkpoint(
                ScanCheckpoint(
                    name=name,
                    epoch=epoch,
                    shards=shards,
                    scan_key=scan_key,
                    target_count=target_count,
                    fingerprint=fingerprint,
                    spec=spec,
                    outcomes=outcomes,
                    sink_offset=sink_offset,
                    telemetry=snapshot,
                ),
                checkpoint_path,
            )

        def complete(outcome: ShardOutcome) -> None:
            outcomes[outcome.shard] = outcome
            flush()
            if telemetry is not None and checkpoint_path is not None:
                telemetry.scan_checkpointed(
                    scan=name,
                    epoch=epoch,
                    vtime=outcome.result.duration,
                    shard=outcome.shard,
                    completed=len(outcomes),
                    remaining=shards - len(outcomes),
                )
            if chaos is not None and chaos.wants_interrupt(len(outcomes)):
                self._interrupted = True

        pending = [s for s in range(shards) if s not in outcomes]
        attempts = {s: 0 for s in pending}
        self._interrupted = False
        round_index = 0
        with self._signal_guard():
            while pending:
                failures = self._run_recovery_round(
                    pending,
                    target_list,
                    config,
                    name,
                    epoch,
                    collect_telemetry=collect,
                    chaos=chaos,
                    attempts=attempts,
                    complete=complete,
                )
                if self._interrupted:
                    flush()
                    raise ScanInterrupted(
                        checkpoint_path, len(outcomes), shards - len(outcomes)
                    )
                pending = []
                for shard, error in failures:
                    attempts[shard] += 1
                    if attempts[shard] > self.max_shard_retries:
                        raise ShardFailedError(
                            shard, attempts[shard], error, checkpoint_path
                        )
                    if telemetry is not None:
                        telemetry.shard_retried(
                            scan=name,
                            epoch=epoch,
                            shard=shard,
                            attempt=attempts[shard],
                            error=f"{type(error).__name__}: {error}",
                        )
                    pending.append(shard)
                if pending:
                    delay = self._retry_schedule.backoff_delay(round_index)
                    if delay > 0:
                        self._sleep(delay)
                    round_index += 1

        merged = merge_shard_outcomes(
            self.world,
            outcomes.values(),
            name=name,
            epoch=epoch,
            telemetry=telemetry,
            targets_buffered=stream_buffered(target_list),
            sink=sink,
            ring_stats=self.ring_stats,
            backend=config.backend,
        )
        if checkpoint_path is not None:
            # The scan is whole; a leftover journal would make the next
            # run of the same (name, epoch) resume into stale state.
            checkpoint_path.unlink(missing_ok=True)
        return merged

    def _run_recovery_round(
        self,
        pending: list[int],
        target_list: Sequence[int],
        config: ScanConfig,
        name: str,
        epoch: int,
        *,
        collect_telemetry: bool,
        chaos: ChaosEngine | None,
        attempts: dict[int, int],
        complete,
    ) -> list[tuple[int, BaseException]]:
        """Run one attempt of every pending shard; report failures.

        Each round gets a *fresh* pool — a hard-crashed worker breaks a
        process pool for good, so reuse is never safe.  ``complete`` is
        called in the parent as each shard finishes (checkpoint + ops
        telemetry); an interrupt request stops the round early, leaving
        in-flight shards for a future resume.
        """
        mode = self._resolve_executor(len(target_list))
        failures: list[tuple[int, BaseException]] = []
        if mode == "serial":
            for shard in pending:
                if self._interrupted:
                    break
                try:
                    outcome = scan_shard(
                        self.world,
                        config,
                        target_list,
                        name=name,
                        epoch=epoch,
                        shard=shard,
                        shards=self.shards,
                        collect_telemetry=collect_telemetry,
                        chaos=chaos,
                        attempt=attempts[shard],
                    )
                except Exception as error:
                    failures.append((shard, error))
                else:
                    complete(outcome)
            return failures
        workers = self.max_workers or min(
            self.shards, (os.cpu_count() or 1) if mode == "process" else self.shards
        )
        futures: dict[Future, int] = {}
        if mode == "process":
            payload: Sequence[int] | StreamSpec = target_list
            if isinstance(target_list, TargetStream):
                spec = target_list.spec()
                if spec is not None:
                    payload = spec
            pool: Executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(world_payload(self.world), payload),
            )
            for shard in pending:
                future = pool.submit(
                    _worker_scan_shard,
                    config,
                    name,
                    epoch,
                    shard,
                    self.shards,
                    collect_telemetry,
                    chaos,
                    attempts[shard],
                )
                futures[future] = shard
        else:
            pool = ThreadPoolExecutor(max_workers=workers)
            for shard in pending:
                future = pool.submit(
                    scan_shard,
                    self.world,
                    config,
                    target_list,
                    name=name,
                    epoch=epoch,
                    shard=shard,
                    shards=self.shards,
                    collect_telemetry=collect_telemetry,
                    chaos=chaos,
                    attempt=attempts[shard],
                )
                futures[future] = shard
        consumed: set[Future] = set()
        try:
            outstanding = set(futures)
            while outstanding and not self._interrupted:
                # Short waits so an interrupt (signal handler or chaos
                # plan) is honoured between completions, not only at the
                # end of the round.
                done, outstanding = wait(outstanding, timeout=0.2)
                for future in done:
                    if self._interrupted:
                        # Stop mid-batch: unprocessed results are simply
                        # re-run on resume, which stays byte-identical.
                        break
                    shard = futures[future]
                    consumed.add(future)
                    try:
                        outcome = future.result()
                    except Exception as error:
                        # A dead worker surfaces as BrokenProcessPool on
                        # every in-flight future; each affected shard is
                        # recorded and retried on the next (fresh) pool.
                        failures.append((shard, error))
                    else:
                        # Drain the shared-memory frame *before* complete:
                        # the checkpoint journal pickles the outcome, and
                        # a journaled ring handle would dangle on resume.
                        drain_outcome(outcome, self.ring_stats)
                        complete(outcome)
        finally:
            cancel = self._interrupted
            pool.shutdown(wait=not cancel, cancel_futures=cancel)
            if cancel:
                _release_ring_futures(
                    [future for future in futures if future not in consumed]
                )
        return failures
