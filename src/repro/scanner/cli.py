"""``sra-scan``: a command-line scanner against a simulated world.

The operational counterpart of the paper's ZMapv6 + Go generator pipeline::

    sra-scan --seed 7 --input-set bgp-plain --output scan.csv
    sra-scan --seed 7 --input-set hitlist-64 --max-targets 20000 \
             --pcap raw.pcap --summary

Builds the world for ``--seed``, generates the chosen input set, scans it,
applies the alias filter, and writes results as CSV/JSONL (plus optionally
the raw traffic as pcap).
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import replace as dc_replace
from pathlib import Path

from ..addr.ipv6 import parse_address
from ..core.aliasfilter import filter_aliased
from ..datasets.tum import harvest_hitlist, published_alias_list
from ..telemetry.scan import ScanTelemetry
from ..topology.config import WorldConfig, tiny_config
from ..topology.generator import build_world
from .backends import (
    BackendPrivilegeError,
    RawSocketBackend,
    RetryPolicy,
    backend_names,
)
from .checkpoint import CheckpointError
from .records import ScanResult, merge_results
from .sharded import (
    ScanInterrupted,
    ShardedScanRunner,
    ShardFailedError,
    auto_shard_count,
)
from .stream import (
    CsvSink,
    JsonlSink,
    LazyStream,
    RecordSink,
    TeeSink,
    as_stream,
    make_spec,
    register_stream_builder,
)
from .strategies import Telescope, build_strategy, strategy_names
from .targets import (
    TargetList,
    bgp_plain_targets,
    bgp_slash48_targets,
    bgp_slash64_targets,
    hitlist_slash64_targets,
    route6_slash64_targets,
)
from .zmapv6 import ScanConfig, ZMapV6Scanner

INPUT_SETS = ("bgp-plain", "bgp-48", "bgp-64", "route6-64", "hitlist-64")

_SUBNET_LENGTHS = {
    "bgp-plain": None,
    "bgp-48": 48,
    "bgp-64": 64,
    "route6-64": 64,
    "hitlist-64": 64,
}


def _materialise_targets(
    world, input_set: str, *, max_targets: int | None, seed: int
) -> TargetList:
    """Generate one of the survey's input sets for a world, eagerly."""
    rng = random.Random(seed)
    if input_set == "bgp-plain":
        return bgp_plain_targets(world.bgp, max_targets=max_targets)
    if input_set == "bgp-48":
        return bgp_slash48_targets(
            world.bgp, max_per_prefix=192, max_targets=max_targets, rng=rng
        )
    if input_set == "bgp-64":
        return bgp_slash64_targets(
            world.bgp, max_per_prefix=512, max_targets=max_targets, rng=rng
        )
    if input_set == "route6-64":
        return route6_slash64_targets(
            world.irr, per_prefix=96, max_targets=max_targets, rng=rng
        )
    if input_set == "hitlist-64":
        hitlist = harvest_hitlist(world)
        return hitlist_slash64_targets(hitlist, max_targets=max_targets)
    raise ValueError(f"unknown input set {input_set!r}")


def _build_cli_input_set(world, *, input_set: str, max_targets, seed: int):
    return as_stream(
        _materialise_targets(
            world, input_set, max_targets=max_targets, seed=seed
        )
    )


register_stream_builder("cli-input-set", _build_cli_input_set)


def build_targets(
    world, input_set: str, *, max_targets: int | None, seed: int
) -> LazyStream:
    """One of the survey's input sets, as a lazily-realised target stream.

    The stream carries a picklable spec, so sharded process-pool scans
    ship the recipe (a few hundred bytes) instead of the target list.
    """
    return LazyStream(
        lambda: _materialise_targets(
            world, input_set, max_targets=max_targets, seed=seed
        ),
        name=input_set,
        subnet_length=_SUBNET_LENGTHS[input_set],
        spec=make_spec(
            "cli-input-set",
            __name__,
            input_set=input_set,
            max_targets=max_targets,
            seed=seed,
        ),
    )


def check_output_paths(paths: "list[tuple[str, str | None]]") -> str | None:
    """Validate output destinations *before* the scan runs.

    Returns an error message when some ``--flag PATH`` points into a
    directory that does not exist (a plain missing file is fine — we
    create those), so a long scan can't end in an unwritable-path
    traceback.
    """
    for flag, value in paths:
        if not value:
            continue
        parent = Path(value).parent
        if not parent.is_dir():
            return f"{flag}: directory {str(parent)!r} does not exist"
    return None


def _resilience_policy(args) -> "RetryPolicy | None":
    """The scan's :class:`RetryPolicy`, or None when no flag asked for one.

    Jitter draws are seeded from the scan seed, so retried runs stay in
    the same reproducible universe as the probes themselves.
    """
    if (
        args.backend_retries == 0
        and args.backend_timeout is None
        and args.breaker_threshold is None
    ):
        return None
    return RetryPolicy(
        max_retries=args.backend_retries,
        timeout=args.backend_timeout,
        breaker_threshold=args.breaker_threshold,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="sra-scan", description=__doc__)
    parser.add_argument("--seed", type=int, default=2024, help="world seed")
    parser.add_argument(
        "--world",
        choices=("tiny", "default"),
        default="tiny",
        help="world size (tiny builds in ~1s)",
    )
    parser.add_argument("--input-set", choices=INPUT_SETS, default="bgp-plain")
    parser.add_argument(
        "--strategy",
        choices=strategy_names(),
        default=None,
        help="run a multi-epoch discovery strategy instead of a one-shot "
        "--input-set scan; adaptive strategies feed each epoch's records "
        "into the next window. With --checkpoint DIR each epoch journals "
        "there and an interrupted run resumes to identical output",
    )
    parser.add_argument(
        "--strategy-epochs",
        type=int,
        default=None,
        metavar="N",
        help="epochs of the --strategy run (default 3)",
    )
    parser.add_argument(
        "--strategy-budget",
        type=int,
        default=None,
        metavar="N",
        help="probe-target budget per --strategy epoch (default 5000)",
    )
    parser.add_argument("--max-targets", type=int, default=None)
    parser.add_argument("--pps", type=float, default=None, help="probe rate")
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="probes per engine batch (throughput dial; results are "
        "bit-identical for any value)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=6.0,
        help="virtual scan duration used when --pps is not given",
    )
    parser.add_argument(
        "--backend",
        default="sim",
        metavar="NAME",
        help="probe backend: 'sim' (default), 'wire-sim' (byte-accurate "
        "wire round trip over the simulator; output is identical to "
        "sim), or 'raw' (real raw-socket ICMPv6 against --targets-file; "
        "requires --i-am-authorized and CAP_NET_RAW, never implied)",
    )
    parser.add_argument(
        "--i-am-authorized",
        action="store_true",
        help="assert you are authorized to probe the --targets-file "
        "hosts with --backend raw",
    )
    parser.add_argument(
        "--targets-file",
        metavar="PATH",
        help="probe these IPv6 addresses (one per line, '#' comments) "
        "instead of a generated input set; required by and exclusive "
        "to --backend raw",
    )
    parser.add_argument("--hop-limit", type=int, default=64)
    parser.add_argument("--epoch", type=int, default=0, help="scan epoch")
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the scan across N parallel shards (0 = one per core); "
        "results are bit-identical at any shard count",
    )
    parser.add_argument(
        "--parallel",
        choices=("auto", "process", "thread", "serial"),
        default="auto",
        help="executor for sharded scans",
    )
    parser.add_argument("--no-alias-filter", action="store_true")
    parser.add_argument("--output", help="write records as CSV")
    parser.add_argument("--jsonl", help="write records as JSONL")
    parser.add_argument(
        "--stream-records",
        action="store_true",
        help="constant-memory mode: write records to --output/--jsonl as "
        "they are matched instead of buffering them; output bytes are "
        "identical to the buffered path. Requires --no-alias-filter "
        "(the alias filter needs the full record set)",
    )
    parser.add_argument(
        "--max-rss-check",
        type=float,
        default=None,
        metavar="MB",
        help="exit 3 if the process's peak RSS exceeded MB mebibytes "
        "(a guard rail for constant-memory scans)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="journal completed shards to PATH after each shard; with "
        "--resume a prior journal is loaded and only missing shards "
        "re-run (merged output is byte-identical to an uninterrupted "
        "scan). SIGINT/SIGTERM flush a final checkpoint and exit 5",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint if it exists (fresh start otherwise)",
    )
    parser.add_argument(
        "--max-shard-retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a crashed shard up to N times on a fresh pool "
        "(bounded exponential backoff) before giving up",
    )
    parser.add_argument(
        "--backend-retries",
        type=int,
        default=0,
        metavar="N",
        help="retry each failed backend batch up to N times (seeded "
        "deterministic backoff) before splitting/quarantining it; any "
        "resilience flag wraps the backend in the resilient transport "
        "layer",
    )
    parser.add_argument(
        "--backend-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-batch watchdog deadline; a hung backend batch is "
        "recovered and retried (default: no deadline)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=float,
        default=None,
        metavar="RATE",
        help="circuit-breaker open threshold as a batch failure rate in "
        "(0, 1]; an open breaker quarantines batches without probing "
        "until its cooldown expires (default: no breaker)",
    )
    parser.add_argument(
        "--world-artifact",
        metavar="PATH",
        help="stream the world into (or load it from) a binary artifact "
        "at PATH instead of holding it in memory: generation runs in a "
        "flat RSS, shard workers bootstrap from the mmap'd file (O(KB) "
        "payload) and share its pages. An existing artifact is reused if "
        "its config fingerprint matches, rebuilt in place otherwise; "
        "scan output is byte-identical either way",
    )
    parser.add_argument("--pcap", help="also write raw traffic as pcap")
    parser.add_argument(
        "--telemetry-out", help="write the scan's JSONL event stream here"
    )
    parser.add_argument(
        "--metrics-out", help="write Prometheus-text metrics here"
    )
    parser.add_argument(
        "--ring-stats-out",
        metavar="PATH",
        help="write the runner's shared-memory transport counters "
        "(segments/bytes/records/checks/fallbacks) as JSON here",
    )
    parser.add_argument(
        "--progress-every",
        type=int,
        default=1000,
        help="emit a telemetry progress event every N probes (0 = none)",
    )
    parser.add_argument("--summary", action="store_true", help="print totals")
    args = parser.parse_args(argv)
    # One-line stderr + exit 2 for bad numeric knobs: these used to leak
    # through as tracebacks (ScanConfig ValueError) or silent weird
    # slicing (a negative --max-targets slices from the *end* of the set).
    for problem in (
        "--pps must be positive"
        if args.pps is not None and args.pps <= 0
        else None,
        "--batch-size must be >= 1"
        if args.batch_size is not None and args.batch_size < 1
        else None,
        "--max-targets must be >= 0"
        if args.max_targets is not None and args.max_targets < 0
        else None,
        "--max-shard-retries must be >= 0"
        if args.max_shard_retries < 0
        else None,
        "--backend-retries must be >= 0"
        if args.backend_retries < 0
        else None,
        "--backend-timeout must be positive"
        if args.backend_timeout is not None
        and not args.backend_timeout > 0  # NaN fails this comparison too
        else None,
        "--breaker-threshold must be in (0, 1]"
        if args.breaker_threshold is not None
        and not 0.0 < args.breaker_threshold <= 1.0  # rejects NaN as well
        else None,
    ):
        if problem is not None:
            print(f"sra-scan: {problem}", file=sys.stderr)
            return 2
    if args.backend not in backend_names():
        print(
            f"sra-scan: unknown backend {args.backend!r} "
            f"(choose from {', '.join(backend_names())})",
            file=sys.stderr,
        )
        return 2
    if args.backend == "raw":
        for problem in (
            "--backend raw probes real networks; pass --i-am-authorized "
            "only for targets you are permitted to scan"
            if not args.i_am_authorized
            else None,
            "--backend raw needs --targets-file (generated input sets "
            "are simulator addresses)"
            if not args.targets_file
            else None,
            "--backend raw runs unsharded (--shards 1)"
            if args.shards != 1
            else None,
            "--backend raw does not support --strategy"
            if args.strategy
            else None,
            "--backend raw does not support --checkpoint"
            if args.checkpoint
            else None,
            "--backend raw does not support --pcap" if args.pcap else None,
            "--backend raw does not support --stream-records"
            if args.stream_records
            else None,
        ):
            if problem is not None:
                print(f"sra-scan: {problem}", file=sys.stderr)
                return 2
    elif args.targets_file:
        print(
            "sra-scan: --targets-file is only meaningful with --backend "
            "raw (simulated backends scan generated input sets)",
            file=sys.stderr,
        )
        return 2
    if args.shards < 0:
        parser.error("--shards must be >= 1 (or 0 for one per core)")
    if args.progress_every < 0:
        parser.error("--progress-every must be >= 0")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.strategy is None:
        for flag, value in (
            ("--strategy-epochs", args.strategy_epochs),
            ("--strategy-budget", args.strategy_budget),
        ):
            if value is not None:
                parser.error(f"{flag} requires --strategy")
    else:
        if args.stream_records:
            parser.error(
                "--stream-records is incompatible with --strategy: "
                "adaptive strategies re-read each epoch's record set"
            )
        if args.pcap:
            parser.error("--pcap is not supported in --strategy mode")
        if args.strategy_epochs is not None and args.strategy_epochs < 1:
            parser.error("--strategy-epochs must be >= 1")
        if args.strategy_budget is not None and args.strategy_budget < 1:
            parser.error("--strategy-budget must be >= 1")
    if args.stream_records:
        if not (args.output or args.jsonl):
            parser.error("--stream-records needs --output and/or --jsonl")
        if not args.no_alias_filter:
            parser.error(
                "--stream-records requires --no-alias-filter: the alias "
                "filter re-reads the full record set, which streaming "
                "never buffers"
            )
    problem = check_output_paths(
        [
            ("--output", args.output),
            ("--jsonl", args.jsonl),
            ("--pcap", args.pcap),
            ("--telemetry-out", args.telemetry_out),
            ("--metrics-out", args.metrics_out),
            ("--ring-stats-out", args.ring_stats_out),
            ("--checkpoint", args.checkpoint),
            ("--world-artifact", args.world_artifact),
        ]
    )
    if problem is not None:
        print(f"sra-scan: {problem}", file=sys.stderr)
        return 2

    if args.backend == "raw":
        # No simulated world at all: raw scans probe the operator's own
        # targets file, directly through an unsharded scanner.
        return _raw_scan(args)
    config = tiny_config(args.seed) if args.world == "tiny" else WorldConfig(seed=args.seed)
    if args.world_artifact:
        world = _artifact_world(config, args.world_artifact)
    else:
        world = build_world(config)
    if args.strategy:
        return _strategy_scan(world, args)
    targets = build_targets(
        world, args.input_set, max_targets=args.max_targets, seed=args.seed
    )
    if not len(targets):
        print("no targets generated", file=sys.stderr)
        return 1

    pps = args.pps or max(100.0, len(targets) / args.duration)
    scan_config = ScanConfig(
        pps=pps,
        hop_limit=args.hop_limit,
        seed=args.seed,
        progress_every=args.progress_every,
        backend=args.backend,
        retry_policy=_resilience_policy(args),
    )
    if args.batch_size is not None:
        scan_config = dc_replace(scan_config, batch_size=args.batch_size)
    shards = auto_shard_count() if args.shards == 0 else args.shards
    telemetry = (
        ScanTelemetry() if (args.telemetry_out or args.metrics_out) else None
    )
    runner = ShardedScanRunner(
        world,
        shards=shards,
        executor=args.parallel,
        telemetry=telemetry,
        max_shard_retries=args.max_shard_retries,
    )
    sink: RecordSink | None = None
    if args.stream_records:
        outputs: list[RecordSink] = []
        if args.output:
            outputs.append(CsvSink(args.output))
        if args.jsonl:
            outputs.append(JsonlSink(args.jsonl))
        sink = outputs[0] if len(outputs) == 1 else TeeSink(tuple(outputs))
    try:
        result: ScanResult = runner.scan(
            targets,
            scan_config,
            name=args.input_set,
            epoch=args.epoch,
            sink=sink,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    except CheckpointError as error:
        # Corrupt / truncated / mismatched journal: a clear one-liner, no
        # traceback — the operator decides whether to delete and restart.
        if sink is not None:
            sink.abort()
        print(f"sra-scan: {error}", file=sys.stderr)
        return 4
    except ScanInterrupted as interrupted:
        if sink is not None:
            sink.abort()
        print(f"sra-scan: {interrupted}", file=sys.stderr)
        if args.checkpoint:
            print(
                f"sra-scan: resume with --checkpoint {args.checkpoint} "
                "--resume",
                file=sys.stderr,
            )
        return 5
    except ShardFailedError as failure:
        if sink is not None:
            sink.abort()
        print(f"sra-scan: {failure}", file=sys.stderr)
        return 1
    if sink is not None:
        sink.close()
    if not args.no_alias_filter:
        result, _ = filter_aliased(result, published_alias_list(world))

    if telemetry is not None:
        if args.telemetry_out:
            telemetry.write_jsonl(args.telemetry_out)
        if args.metrics_out:
            telemetry.write_prometheus(args.metrics_out)
    if args.ring_stats_out:
        import json

        Path(args.ring_stats_out).write_text(
            json.dumps(runner.ring_stats.as_dict(), indent=2) + "\n"
        )
    if sink is None:
        if args.output:
            result.write_csv(args.output)
        if args.jsonl:
            result.write_jsonl(args.jsonl)
    if args.pcap:
        from ..netsim.pcap import capture_scan

        capture_scan(
            world,
            list(targets),
            args.pcap,
            epoch=args.epoch + 1_000_000,  # fresh buckets for the capture run
            pps=pps,
            hop_limit=args.hop_limit,
        )

    if args.summary or not (args.output or args.jsonl):
        classes = result.classify_sources()
        print(f"input set  : {args.input_set} ({len(targets)} targets)")
        print(f"probe rate : {pps:.0f} pps (virtual)")
        print(f"shards     : {shards} ({args.parallel})")
        print(f"replies    : {result.received} ({result.reply_rate:.1%} of targets)")
        print(f"router IPs : {len(result.sources())}")
        print(
            "classes    : "
            f"echo={len(classes['echo'])} error={len(classes['error'])} "
            f"both={len(classes['both'])}"
        )
        print(f"loops hit  : {result.loops_observed}")
    if args.max_rss_check is not None:
        peak = peak_rss_mib()
        if peak > args.max_rss_check:
            print(
                f"sra-scan: peak RSS {peak:.1f} MiB exceeded "
                f"--max-rss-check {args.max_rss_check:.1f} MiB",
                file=sys.stderr,
            )
            return 3
    return 0


def _raw_scan(args) -> int:
    """``--backend raw``: probe a targets file over a real raw socket.

    Deliberately the narrowest path in this CLI: no world, no sharding,
    no checkpoints — one scanner, one backend, the operator's own target
    list.  Privilege failures surface as the same one-line exit-2 errors
    the validation layer uses (the socket is the validator here).
    """
    from ..addr.ipv6 import AddressError

    try:
        lines = Path(args.targets_file).read_text().splitlines()
    except OSError as error:
        print(f"sra-scan: cannot read --targets-file: {error}", file=sys.stderr)
        return 2
    targets: list[int] = []
    for line in lines:
        text = line.split("#", 1)[0].strip()
        if not text:
            continue
        try:
            targets.append(parse_address(text))
        except AddressError as error:
            print(f"sra-scan: {error}", file=sys.stderr)
            return 2
    if not targets:
        print("sra-scan: --targets-file has no targets", file=sys.stderr)
        return 1

    pps = args.pps or max(100.0, len(targets) / args.duration)
    scan_config = ScanConfig(
        pps=pps,
        hop_limit=args.hop_limit,
        seed=args.seed,
        progress_every=args.progress_every,
        backend="raw",
        authorized=True,
        retry_policy=_resilience_policy(args),
    )
    if args.batch_size is not None:
        scan_config = dc_replace(scan_config, batch_size=args.batch_size)
    telemetry = (
        ScanTelemetry() if (args.telemetry_out or args.metrics_out) else None
    )
    backend = RawSocketBackend(authorized=True, pps=pps)
    scanner = ZMapV6Scanner(backend, scan_config, telemetry=telemetry)
    try:
        result = scanner.scan(targets, name="raw", epoch=args.epoch)
    except BackendPrivilegeError as error:
        print(f"sra-scan: {error}", file=sys.stderr)
        return 2
    finally:
        backend.close()
        # The raw receiver thread can fail to join (a blocked recv):
        # surface it rather than leak silently.
        for warning in backend.pop_warnings():
            print(f"sra-scan: warning: {warning}", file=sys.stderr)
    if telemetry is not None:
        if args.telemetry_out:
            telemetry.write_jsonl(args.telemetry_out)
        if args.metrics_out:
            telemetry.write_prometheus(args.metrics_out)
    if args.output:
        result.write_csv(args.output)
    if args.jsonl:
        result.write_jsonl(args.jsonl)
    if args.summary or not (args.output or args.jsonl):
        print(f"targets    : {len(targets)} (raw backend)")
        print(f"probe rate : {pps:.0f} pps (ceiling)")
        print(f"replies    : {result.received}")
        print(f"router IPs : {len(result.sources())}")
        print(f"unmatched  : {result.unmatched_replies}")
    return 0


def _strategy_scan(world, args) -> int:
    """``sra-scan --strategy``: the multi-epoch adaptive scan loop.

    Each epoch scans the strategy's current window through a (possibly
    sharded) runner, classifies it against the telescope, feeds the
    records back to the strategy, and rolls the router-IP tally.  With
    ``--checkpoint DIR`` the runner journals every epoch's shards there
    and auto-resumes: re-running the same command after an interrupt
    reconstructs earlier epochs' records byte-identically, so adaptive
    feedback — and therefore every later window — is unchanged.
    """
    epochs = args.strategy_epochs if args.strategy_epochs is not None else 3
    budget = (
        args.strategy_budget if args.strategy_budget is not None else 5_000
    )
    shards = auto_shard_count() if args.shards == 0 else args.shards
    telemetry = (
        ScanTelemetry() if (args.telemetry_out or args.metrics_out) else None
    )
    runner = ShardedScanRunner(
        world,
        shards=shards,
        executor=args.parallel,
        telemetry=telemetry,
        max_shard_retries=args.max_shard_retries,
        checkpoint_dir=args.checkpoint,
    )
    strategy = build_strategy(
        args.strategy, world, seed=args.seed, budget=budget
    )
    telescope = Telescope(world)
    cumulative: set[int] = set()
    results: list[ScanResult] = []
    epoch_lines: list[str] = []
    try:
        for index in range(epochs):
            window = strategy.window(index)
            pps = args.pps or max(100.0, len(window) / args.duration)
            scan_config = ScanConfig(
                pps=pps,
                hop_limit=args.hop_limit,
                seed=args.seed + index,
                progress_every=args.progress_every,
                backend=args.backend,
                retry_policy=_resilience_policy(args),
            )
            if args.batch_size is not None:
                scan_config = dc_replace(
                    scan_config, batch_size=args.batch_size
                )
            result = runner.scan(
                window,
                scan_config,
                name=args.strategy,
                epoch=args.epoch + index,
            )
            watched = telescope.observe_window(
                window, strategy=args.strategy, epoch=index
            )
            new_ips = len(result.sources() - cumulative)
            cumulative |= result.sources()
            stats = result.engine_stats
            suppressed = stats.suppressed_errors if stats is not None else 0
            if telemetry is not None:
                telemetry.strategy_window_finished(
                    strategy=args.strategy,
                    epoch=index,
                    targets=len(window),
                    new_router_ips=new_ips,
                    cumulative_router_ips=len(cumulative),
                    dark_probes=watched.dark,
                    suppressed_errors=suppressed,
                )
            strategy.observe(result.records)
            results.append(result)
            epoch_lines.append(
                f"epoch {index}  : {len(window)} targets, "
                f"+{new_ips} router IPs ({len(cumulative)} total), "
                f"{watched.dark} dark, {suppressed} suppressed"
            )
    except CheckpointError as error:
        print(f"sra-scan: {error}", file=sys.stderr)
        return 4
    except ScanInterrupted as interrupted:
        print(f"sra-scan: {interrupted}", file=sys.stderr)
        if args.checkpoint:
            print(
                "sra-scan: re-run the same command to resume from "
                f"{args.checkpoint}",
                file=sys.stderr,
            )
        return 5
    except ShardFailedError as failure:
        print(f"sra-scan: {failure}", file=sys.stderr)
        return 1
    merged = merge_results(args.strategy, results)
    if not args.no_alias_filter:
        merged, _ = filter_aliased(merged, published_alias_list(world))
    if telemetry is not None:
        if args.telemetry_out:
            telemetry.write_jsonl(args.telemetry_out)
        if args.metrics_out:
            telemetry.write_prometheus(args.metrics_out)
    if args.ring_stats_out:
        import json

        Path(args.ring_stats_out).write_text(
            json.dumps(runner.ring_stats.as_dict(), indent=2) + "\n"
        )
    if args.output:
        merged.write_csv(args.output)
    if args.jsonl:
        merged.write_jsonl(args.jsonl)
    if args.summary or not (args.output or args.jsonl):
        print(f"strategy   : {args.strategy} ({epochs} epochs x {budget} budget)")
        print(f"shards     : {shards} ({args.parallel})")
        for line in epoch_lines:
            print(line)
        print(f"replies    : {merged.received}")
        print(f"router IPs : {len(merged.sources())}")
    return 0


def _artifact_world(config, path: str):
    """Load (or build) the artifact-backed world for ``--world-artifact``.

    Reuses an existing artifact only when its fingerprint matches the
    requested config — a stale file from another seed/world silently
    producing different scans would be worse than the rebuild.
    """
    from ..topology.artifact import build_fingerprint, load_world_artifact
    from ..topology.generator import build_world_artifact

    wanted = build_fingerprint(config)
    if Path(path).exists():
        world = load_world_artifact(path)
        if world.artifact_fingerprint == wanted:
            return world
        print(
            f"sra-scan: {path}: artifact is for a different world config; "
            "rebuilding",
            file=sys.stderr,
        )
    return build_world_artifact(config, path)


def peak_rss_mib() -> float:
    """This process's lifetime peak resident set size, in MiB."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


if __name__ == "__main__":
    sys.exit(main())
