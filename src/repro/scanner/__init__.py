"""ZMapv6-style stateless scanner: targets, pacing, records, sharding."""

from .pacing import paced_pps
from .records import ScanRecord, ScanResult, iter_router_ips, merge_results
from .sharded import ShardedScanRunner, auto_shard_count
from .targets import (
    TargetList,
    bgp_plain_targets,
    bgp_slash48_targets,
    bgp_slash64_targets,
    hitlist_slash64_targets,
    prefixes_of_targets,
    route6_slash64_targets,
)
from .zmapv6 import ScanConfig, ZMapV6Scanner

__all__ = [
    "ScanConfig",
    "ScanRecord",
    "ScanResult",
    "ShardedScanRunner",
    "TargetList",
    "ZMapV6Scanner",
    "auto_shard_count",
    "bgp_plain_targets",
    "paced_pps",
    "bgp_slash48_targets",
    "bgp_slash64_targets",
    "hitlist_slash64_targets",
    "iter_router_ips",
    "merge_results",
    "prefixes_of_targets",
    "route6_slash64_targets",
]
