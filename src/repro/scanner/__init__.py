"""ZMapv6-style stateless scanner: targets, pacing, records."""

from .records import ScanRecord, ScanResult, iter_router_ips, merge_results
from .targets import (
    TargetList,
    bgp_plain_targets,
    bgp_slash48_targets,
    bgp_slash64_targets,
    hitlist_slash64_targets,
    prefixes_of_targets,
    route6_slash64_targets,
)
from .zmapv6 import ScanConfig, ZMapV6Scanner

__all__ = [
    "ScanConfig",
    "ScanRecord",
    "ScanResult",
    "TargetList",
    "ZMapV6Scanner",
    "bgp_plain_targets",
    "bgp_slash48_targets",
    "bgp_slash64_targets",
    "hitlist_slash64_targets",
    "iter_router_ips",
    "merge_results",
    "prefixes_of_targets",
    "route6_slash64_targets",
]
