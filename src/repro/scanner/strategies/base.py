"""Pluggable discovery strategies: one interface over many generators.

The paper's core claim is comparative — subnet-router anycast probing
discovers periphery routers that *other* IPv6 scanning strategies miss.
Testing that fairly requires every strategy behind one interface so the
race harness (:mod:`repro.experiments.strategy_race`) can hold the
world, the probe budget and the scan substrate constant while varying
only target generation.

A :class:`TargetStrategy` produces one :class:`~repro.scanner.stream.TargetStream`
per epoch (its *window*).  Windows ride the existing stream machinery
unchanged: they are index-seekable (so :func:`shard_positions` tiles
them), carry provenance (name, subnet length), and expose a picklable
:class:`~repro.scanner.stream.StreamSpec` — sharded process pools ship
the strategy recipe, never target data.

Feedback-driven strategies implement :meth:`TargetStrategy.observe`:
the race feeds each epoch's merged records back before asking for the
next window.  Two invariants make adaptive scans crash-tolerant:

* ``observe`` must be a pure function of the record *set* (order
  independent) folded into the prior feedback state, and
* :meth:`feedback_state` / :meth:`restore` round-trip that state as a
  small picklable tuple, which also rides inside the window spec.

Together they guarantee that a scan interrupted mid-epoch and resumed
from its checkpoint journal — which reproduces the epoch's records
byte-identically — reconstructs the exact same next-epoch window
(pinned by ``tests/test_faults.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable

from ..records import ScanRecord
from ..stream import (
    ListStream,
    StreamSpec,
    TargetStream,
    make_spec,
    register_stream_builder,
)
from ..targets import _bounded

if TYPE_CHECKING:  # strategies rebuild from a world; ducks otherwise
    from ...topology.entities import World

__all__ = [
    "TargetStrategy",
    "build_strategy",
    "register_strategy",
    "strategy_names",
]

DEFAULT_BUDGET = 10_000


class TargetStrategy(ABC):
    """A (possibly feedback-driven) producer of probe-target windows.

    Subclasses set ``name`` (the registry key), implement
    :meth:`targets_for`, and — when adaptive — override
    :meth:`observe`/:meth:`feedback_state`/:meth:`restore` as a matched
    triple.  ``budget`` caps every window's size; ``seed`` drives any
    randomised expansion, so a strategy's windows are a deterministic
    function of ``(world, seed, budget, feedback state, epoch)``.
    """

    name: str = "strategy"
    subnet_length: int | None = 64

    def __init__(
        self, world: "World", *, seed: int = 0, budget: int = DEFAULT_BUDGET
    ) -> None:
        if budget < 1:
            raise ValueError(f"strategy budget must be >= 1, got {budget}")
        self.world = world
        self.seed = seed
        self.budget = budget

    # -- the per-epoch window -- #

    @abstractmethod
    def targets_for(self, epoch: int) -> list[int]:
        """The epoch's probe targets: deduplicated, at most ``budget``."""

    def window(self, epoch: int) -> TargetStream:
        """The epoch's targets as a provenance-carrying stream.

        The stream's spec embeds the current feedback state, so a pool
        worker rebuilding the window from the spec reproduces it without
        ever having observed the records itself.
        """
        return ListStream(
            self.targets_for(epoch),
            name=f"{self.name}@e{epoch}",
            subnet_length=self.subnet_length,
            spec=self.window_spec(epoch),
        )

    def window_spec(self, epoch: int) -> StreamSpec:
        return make_spec(
            "strategy-window",
            __name__,
            strategy=self.name,
            epoch=epoch,
            seed=self.seed,
            budget=self.budget,
            feedback=self.feedback_state(),
        )

    # -- the adaptive feedback loop -- #

    def observe(self, records: Iterable[ScanRecord]) -> None:
        """Fold one epoch's scan records into the feedback state.

        The default strategy is static: observing is a no-op.  Adaptive
        overrides must derive their update from the record *set* only —
        never record order or arrival timing — so resumed scans converge
        to identical state.
        """

    def feedback_state(self) -> tuple:
        """The feedback state as a small, sorted, picklable tuple."""
        return ()

    def restore(self, state: tuple) -> None:
        """Adopt a previously exported :meth:`feedback_state`."""
        if state:
            raise ValueError(
                f"strategy {self.name!r} carries no feedback state"
            )

    # -- shared helpers -- #

    def _window_list(self, targets: Iterable[int]) -> list[int]:
        """First-occurrence dedup cut to the probe budget."""
        return _bounded(targets, self.budget)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(seed={self.seed}, budget={self.budget})"
        )


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

_STRATEGIES: dict[str, type[TargetStrategy]] = {}


def register_strategy(cls: type[TargetStrategy]) -> type[TargetStrategy]:
    """Class decorator: register a strategy under its ``name``."""
    name = cls.name
    if not name or name == TargetStrategy.name:
        raise ValueError(f"strategy class {cls.__name__} needs a real name")
    _STRATEGIES[name] = cls
    return cls


def _ensure_builtin() -> None:
    """Import the built-in strategy modules (they self-register)."""
    from . import baselines, entropy, feedback  # noqa: F401


def strategy_names() -> tuple[str, ...]:
    """Every registered strategy name, sorted (the race's run order)."""
    _ensure_builtin()
    return tuple(sorted(_STRATEGIES))


def build_strategy(
    name: str,
    world: "World",
    *,
    seed: int = 0,
    budget: int = DEFAULT_BUDGET,
    **kwargs,
) -> TargetStrategy:
    """Instantiate a registered strategy against a world."""
    _ensure_builtin()
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; "
            f"choose from {', '.join(sorted(_STRATEGIES))}"
        ) from None
    return cls(world, seed=seed, budget=budget, **kwargs)


def _build_strategy_window(
    world, *, strategy: str, epoch: int, seed: int, budget: int, feedback=()
) -> TargetStream:
    """Stream builder: rebuild one strategy window from its spec."""
    instance = build_strategy(strategy, world, seed=seed, budget=budget)
    instance.restore(tuple(feedback))
    return instance.window(epoch)


register_stream_builder("strategy-window", _build_strategy_window)
