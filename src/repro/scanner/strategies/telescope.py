"""A simulated network telescope watching the scanners themselves.

"Glowing in the Dark" showed that IPv6 scanners are visible from
unrouted address space: probes that fall outside announced BGP prefixes
land in the dark, where a telescope operator — not a router — answers
the question "who is scanning, and how indiscriminately?".

The simulation inverts the paper's vantage point: instead of running a
telescope network, it classifies each strategy's probe windows against
the world's BGP table.  Probes whose longest-prefix match fails are
*dark* — a real telescope would have captured them, and (more
practically for the race) they are probes the budget spent on provably
empty space.  The dark share is therefore both a detectability score
and an efficiency penalty, reported per strategy in the comparison
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ...addr.ipv6 import network_of

if TYPE_CHECKING:
    from ...topology.entities import World

__all__ = ["Telescope", "TelescopeReport"]

# Granularity for the distinct-dark-regions view: /32 is a typical RIR
# allocation unit, so distinct dark /32s ≈ "how many allocations' worth
# of unallocated space did the scanner spray".
DARK_REGION_LENGTH = 32


@dataclass(slots=True)
class TelescopeReport:
    """What the telescope saw of one strategy window."""

    strategy: str
    epoch: int
    probes: int = 0
    routed: int = 0
    dark: int = 0

    @property
    def dark_share(self) -> float:
        return self.dark / self.probes if self.probes else 0.0


class Telescope:
    """Classify probe targets as routed vs dark against a BGP table."""

    def __init__(self, world: "World") -> None:
        self._bgp = world.bgp
        self._dark_regions: set[int] = set()

    def observe_window(
        self, targets: Iterable[int], *, strategy: str, epoch: int
    ) -> TelescopeReport:
        """One window's routed/dark split (cumulative regions update)."""
        report = TelescopeReport(strategy=strategy, epoch=epoch)
        is_routed = self._bgp.is_routed
        for target in targets:
            report.probes += 1
            if is_routed(target):
                report.routed += 1
            else:
                report.dark += 1
                self._dark_regions.add(
                    network_of(target, DARK_REGION_LENGTH)
                )
        return report

    @property
    def dark_regions(self) -> list[int]:
        """Distinct dark /32 networks seen so far, sorted."""
        return sorted(self._dark_regions)
