"""Entropy-clustered target generation ("In the IP of the Beholder").

Beverly et al. observe that allocated IPv6 space is *structured*: within
a covering prefix, the subnet-identifier nybbles of active addresses
concentrate on few values.  Segmenting seen addresses by covering /48
and measuring per-nybble value diversity separates structured
(low-entropy) regions — worth dense expansion — from essentially random
(high-entropy) ones that would soak up the probe budget for nothing.

This strategy implements that generation loop over the 16 subnet-id
bits between /48 and /64:

1. group seed addresses (hitlist hosts, plus every Echo source learned
   via :meth:`observe`) by their /48 network;
2. per group, collect the observed per-nybble value sets of the four
   subnet-id nybbles;
3. expand each group as the sorted cartesian product of its observed
   nybble values — exactly the /64s the group's structure predicts —
   capped at ``per_group``;
4. fill the probe budget walking groups from most to least structured.

Groups are ordered by their *expansion size* (the product of distinct
per-nybble value counts) — the integer-exact stand-in for nybble
entropy: a group whose nybbles take few distinct values has both low
Shannon entropy and a small product.  Ordering on integers rather than
on ``log``-based scores keeps window bytes identical across platforms
and libm builds.  :func:`nybble_entropy` reports the conventional
bits-per-nybble figure for analysis output.
"""

from __future__ import annotations

import math
from itertools import product
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ...addr.ipv6 import network_of
from ...datasets.tum import harvest_hitlist
from .base import TargetStrategy, register_strategy

if TYPE_CHECKING:
    from ...topology.entities import World

__all__ = ["EntropyClusteredStrategy", "nybble_entropy", "subnet_id_of"]

GROUP_LENGTH = 48
SUBNET_LENGTH = 64
# The four subnet-id nybbles between /48 and /64, most significant first.
_NYBBLE_SHIFTS = (12, 8, 4, 0)


def subnet_id_of(address: int) -> int:
    """The 16 subnet-identifier bits (bits 48..63) of an address."""
    return (address >> (128 - SUBNET_LENGTH)) & 0xFFFF


def nybble_entropy(subnet_ids: Sequence[int], shift: int) -> float:
    """Shannon entropy (bits) of one subnet-id nybble across a group."""
    if not subnet_ids:
        return 0.0
    counts: dict[int, int] = {}
    for sid in subnet_ids:
        value = (sid >> shift) & 0xF
        counts[value] = counts.get(value, 0) + 1
    total = len(subnet_ids)
    entropy = 0.0
    for value in sorted(counts):
        p = counts[value] / total
        entropy -= p * math.log2(p)
    return entropy


def _expand_group(values: Sequence[Sequence[int]], cap: int) -> Iterator[int]:
    """Subnet-ids of the sorted nybble-value cartesian product, capped."""
    for count, nybbles in enumerate(product(*values)):
        if count >= cap:
            return
        sid = 0
        for nybble in nybbles:
            sid = (sid << 4) | nybble
        yield sid


@register_strategy
class EntropyClusteredStrategy(TargetStrategy):
    """Low-entropy /64 expansion of seen addresses, per Beholder."""

    name = "entropy-clustered"

    def __init__(
        self,
        world: "World",
        *,
        seed: int = 0,
        budget: int = 10_000,
        per_group: int = 64,
    ) -> None:
        super().__init__(world, seed=seed, budget=budget)
        if per_group < 1:
            raise ValueError(f"per_group must be >= 1, got {per_group}")
        self.per_group = per_group
        self._seed_addresses: list[int] | None = None
        # Echo sources learned from scan records: proven-active hosts
        # that sharpen next epoch's segmentation.
        self._learned: set[int] = set()

    # -- feedback -- #

    def observe(self, records) -> None:
        for record in records:
            if record.is_echo:
                self._learned.add(record.source)

    def feedback_state(self) -> tuple:
        return tuple(sorted(self._learned))

    def restore(self, state: tuple) -> None:
        self._learned = set(state)

    # -- window generation -- #

    def _addresses(self) -> list[int]:
        if self._seed_addresses is None:
            self._seed_addresses = sorted(set(harvest_hitlist(self.world)))
        if not self._learned:
            return self._seed_addresses
        return sorted(set(self._seed_addresses) | self._learned)

    def targets_for(self, epoch: int) -> list[int]:
        return self._window_list(self._generate())

    def _generate(self) -> Iterable[int]:
        groups: dict[int, list[int]] = {}
        for address in self._addresses():
            network = network_of(address, GROUP_LENGTH)
            groups.setdefault(network, []).append(subnet_id_of(address))
        ranked: list[tuple[int, int, int, list[list[int]]]] = []
        for network in sorted(groups):
            values = [
                sorted({(sid >> shift) & 0xF for sid in groups[network]})
                for shift in _NYBBLE_SHIFTS
            ]
            expansion = 1
            distinct = 0
            for column in values:
                expansion *= len(column)
                distinct += len(column)
            ranked.append((expansion, distinct, network, values))
        # Most structured first; the network int breaks exact ties, so
        # the ordering is total and platform-independent.
        ranked.sort()
        for _expansion, _distinct, network, values in ranked:
            for sid in _expand_group(values, self.per_group):
                yield network | (sid << (128 - SUBNET_LENGTH))
