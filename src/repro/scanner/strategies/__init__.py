"""Discovery strategies behind one interface, raced against SRA probing.

Importing the package registers the four built-in strategies
(``sra-anycast``, ``random-baseline``, ``entropy-clustered``,
``hitlist-feedback``); :func:`build_strategy` instantiates any of them
by name against a world, and :class:`Telescope` observes which of a
strategy's probes land in unallocated space.
"""

from .base import (
    TargetStrategy,
    build_strategy,
    register_strategy,
    strategy_names,
)
from .baselines import RandomBaselineStrategy, SRAAnycastStrategy
from .entropy import EntropyClusteredStrategy
from .feedback import HitlistFeedbackStrategy
from .telescope import Telescope, TelescopeReport

__all__ = [
    "EntropyClusteredStrategy",
    "HitlistFeedbackStrategy",
    "RandomBaselineStrategy",
    "SRAAnycastStrategy",
    "TargetStrategy",
    "Telescope",
    "TelescopeReport",
    "build_strategy",
    "register_strategy",
    "strategy_names",
]
