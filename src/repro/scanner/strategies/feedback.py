"""Hitlist-seeded scanning with per-epoch feedback (Gasser et al.).

Epoch 0 probes the community hitlist's /64 SRA population — the highest
yield input the paper found.  Between epochs the strategy runs the scan
records through the hitlist-contribution acceptance rule
(:func:`repro.analysis.hitlist_feedback.contributing_prefixes`): Echo
sources that are not aliased mark their covering /48 as *contributing*.
Later windows spend most of the budget expanding random /64s inside
contributing prefixes — the "a live router implies a populated region"
feedback loop — and re-probe hitlist seeds with whatever budget is left.

Expansion draws are seeded per ``(seed, epoch, prefix)`` with string
seeding (hash-independent), so a window is a deterministic function of
the feedback state alone: a crash-resumed epoch that reproduces the same
records reconstructs the identical next window.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ...analysis.hitlist_feedback import contributing_prefixes
from ...datasets.tum import harvest_hitlist, published_alias_list
from ..targets import hitlist_slash64_targets
from .base import TargetStrategy, register_strategy

if TYPE_CHECKING:
    from ...hitlist.aliases import AliasedPrefixList
    from ...topology.entities import World

__all__ = ["HitlistFeedbackStrategy"]

SUBNET_ID_SPACE = 1 << 16  # /64s under one /48


@register_strategy
class HitlistFeedbackStrategy(TargetStrategy):
    """Hitlist seeds, then expansion around contributing /48 prefixes."""

    name = "hitlist-feedback"

    def __init__(
        self,
        world: "World",
        *,
        seed: int = 0,
        budget: int = 10_000,
        per_prefix: int = 32,
    ) -> None:
        super().__init__(world, seed=seed, budget=budget)
        if per_prefix < 1:
            raise ValueError(f"per_prefix must be >= 1, got {per_prefix}")
        self.per_prefix = per_prefix
        self._seed_targets: list[int] | None = None
        self._aliases: "AliasedPrefixList | None" = None
        self._contributing: set[int] = set()  # /48 networks

    # -- feedback -- #

    def observe(self, records) -> None:
        if self._aliases is None:
            self._aliases = published_alias_list(self.world)
        self._contributing.update(
            contributing_prefixes(
                records, prefix_length=48, alias_list=self._aliases
            )
        )

    def feedback_state(self) -> tuple:
        return tuple(sorted(self._contributing))

    def restore(self, state: tuple) -> None:
        self._contributing = set(state)

    # -- window generation -- #

    def _seeds(self) -> list[int]:
        if self._seed_targets is None:
            hitlist = harvest_hitlist(self.world)
            self._seed_targets = hitlist_slash64_targets(
                hitlist, max_targets=self.budget
            ).targets
        return self._seed_targets

    def targets_for(self, epoch: int) -> list[int]:
        if epoch == 0 or not self._contributing:
            return self._window_list(self._seeds())
        return self._window_list(self._expansion(epoch))

    def _expansion(self, epoch: int):
        # Exploration is capped at half the budget: random /64s under a
        # contributing /48 are mostly empty, so a window of only them
        # would flatline the yield — the other half re-probes the
        # known-good seeds (the _window_list dedup drops any /64 the
        # expansion already chose).
        cap = self.budget // 2
        emitted = 0
        for network in sorted(self._contributing):
            if emitted >= cap:
                break
            rng = random.Random(f"{self.seed}:{epoch}:{network}")
            count = min(self.per_prefix, SUBNET_ID_SPACE)
            for sid in sorted(rng.sample(range(SUBNET_ID_SPACE), count)):
                if emitted >= cap:
                    break
                yield network | (sid << 64)
                emitted += 1
        yield from self._seeds()
