"""The two ends of the comparison: SRA probing and random probing.

``sra-anycast`` is the paper's own method packaged as a strategy: probe
the subnet-router anycast (``::``) address of every hitlist-derived /64.
``random-baseline`` probes the *same* /64 population but draws one
random in-subnet address per subnet per epoch — the Fig. 5 control,
wrapped in the lazy per-epoch stream the campaign code already uses.
Both are static (no feedback), so the race's adaptive strategies are
measured against fixed goalposts.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ...addr.randomgen import random_targets_for_sras
from ...datasets.tum import harvest_hitlist
from ..stream import LazyStream, TargetStream
from ..targets import hitlist_slash64_targets
from .base import TargetStrategy, register_strategy

if TYPE_CHECKING:
    from ...topology.entities import World

__all__ = ["RandomBaselineStrategy", "SRAAnycastStrategy"]


class _HitlistSeededStrategy(TargetStrategy):
    """Shared seeding: the budgeted /64 SRA population of the world's
    hitlist service.  Harvesting is deterministic per world, so two
    instances (or a pool worker rebuilding from a spec) agree exactly."""

    def __init__(self, world: "World", *, seed: int = 0, budget: int = 10_000):
        super().__init__(world, seed=seed, budget=budget)
        self._seed_targets: list[int] | None = None

    def _seeds(self) -> list[int]:
        if self._seed_targets is None:
            hitlist = harvest_hitlist(self.world)
            self._seed_targets = hitlist_slash64_targets(
                hitlist, max_targets=self.budget
            ).targets
        return self._seed_targets


@register_strategy
class SRAAnycastStrategy(_HitlistSeededStrategy):
    """Probe each /64's subnet-router anycast address, every epoch.

    The window is epoch-invariant by design: SRA probing's value per the
    paper is *stability* probing of the same subnet population, and the
    race's overlap column measures exactly that.
    """

    name = "sra-anycast"

    def targets_for(self, epoch: int) -> list[int]:
        return self._window_list(self._seeds())


@register_strategy
class RandomBaselineStrategy(_HitlistSeededStrategy):
    """One random in-subnet address per /64 per epoch (Fig. 5 control)."""

    name = "random-baseline"

    def targets_for(self, epoch: int) -> list[int]:
        return self._window_list(
            random_targets_for_sras(self._seeds(), 64, self._rng(epoch))
        )

    def window(self, epoch: int) -> TargetStream:
        # Lazy like the Fig. 5 campaign stream: the epoch's random draw
        # is realised on first access and can be released after the scan.
        rng = self._rng(epoch)
        return LazyStream(
            lambda: self._window_list(
                random_targets_for_sras(self._seeds(), 64, rng)
            ),
            name=f"{self.name}@e{epoch}",
            subnet_length=self.subnet_length,
            spec=self.window_spec(epoch),
        )

    def _rng(self, epoch: int) -> random.Random:
        return random.Random((self.seed << 8) | epoch)
