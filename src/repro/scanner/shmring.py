"""Zero-copy shared-memory transport for the shard → merge hand-off.

A process-pool shard used to return its :class:`ShardOutcome` through the
pool's pickled-result channel: every :class:`ScanRecord` and every deferred
rate-limit check was serialised object-by-object in the worker and rebuilt
object-by-object in the parent.  At survey scale that pickle traffic rivals
the scan itself.

This module replaces it with a **shared-memory ring frame**: the worker
packs its records and checks into flat parallel columns
(:class:`~repro.scanner.records.RecordColumns` plus two check arrays) and
memcpys them — one buffer-protocol copy per column, no per-row objects —
into a single ``multiprocessing.shared_memory`` segment.  What crosses the
pickle channel is a tiny :class:`RingHandle` claim ticket.  The parent
attaches, rebuilds the columns straight out of the mapping, and unlinks.

Frame layout (one segment per shard outcome)::

    header:  magic (8s) | record rows (Q) | check rows (Q)
    frame 0: record columns, each contiguous, in RecordColumns field order
    frame 1: check times as array('d'), check router ids as array('q')

Ownership protocol: the worker *creates* the segment but immediately
unregisters it from its resource tracker — the parent owns the unlink.
Draining is therefore mandatory; :func:`drain_outcome` both rebuilds the
payload and releases the segment, and :func:`release_outcome` unlinks an
undrained frame when a failure or interrupt means its payload will never
be merged.

Everything degrades gracefully: when shared memory is unavailable (or a
segment cannot be created) the outcome simply travels the old pickled
path, flagged via ``ring_fallback`` so :class:`RingStats` can report it.
The payload bytes are identical either way — the columns round-trip every
field exactly — so transport choice never changes a scan's output.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .records import RecordColumns

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .sharded import ShardOutcome

try:  # gate: platforms without POSIX/System V shared memory pickle instead
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "RingHandle",
    "RingStats",
    "drain_outcome",
    "pack_outcome",
    "release_outcome",
    "ring_available",
]

_MAGIC = b"SRARING1"
# magic | record row count | check row count
_HEADER = struct.Struct("<8sQQ")


def ring_available() -> bool:
    """Whether this platform can ship outcomes through shared memory."""
    return shared_memory is not None


@dataclass(slots=True)
class RingHandle:
    """Picklable claim ticket for one shard's shared-memory frame."""

    name: str
    nbytes: int
    records: int
    checks: int


@dataclass(slots=True)
class RingStats:
    """Transport counters for the shared-memory shard channel.

    Accumulated on the parent as frames are drained; exported by the CI
    smoke-perf job as an artifact so transport regressions (silent
    pickle fallbacks, ballooning frame sizes) are visible per run.
    """

    segments: int = 0
    bytes: int = 0
    records: int = 0
    checks: int = 0
    fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "segments": self.segments,
            "bytes": self.bytes,
            "records": self.records,
            "checks": self.checks,
            "fallbacks": self.fallbacks,
        }


def _columns(cols: RecordColumns, times: array, routers: array) -> tuple:
    """The frame's column order — shared by pack and drain."""
    return (
        cols.target_hi,
        cols.target_lo,
        cols.source_hi,
        cols.source_lo,
        cols.icmp_type,
        cols.code,
        cols.count,
        cols.time,
        times,
        routers,
    )


def _disinherit(segment) -> None:
    """Hand unlink ownership to the parent process.

    Without this the worker's resource tracker destroys the segment when
    the pool shuts down, racing the parent's drain.  Unregistering is
    best-effort — a tracker that never saw the segment has nothing to
    forget.
    """
    if resource_tracker is None:  # pragma: no cover - import-gated
        return
    try:
        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker quirks are non-fatal
        pass


def pack_outcome(outcome: "ShardOutcome") -> bool:
    """Move an outcome's records and checks into a shared-memory frame.

    Runs in the pool worker, just before the outcome crosses the result
    channel.  On success the records and checks are emptied (the handle
    replaces them) and ``True`` is returned; on any failure the outcome
    is left untouched, ``ring_fallback`` is flagged, and the caller's
    ordinary pickled return does the job.
    """
    if shared_memory is None:
        outcome.ring_fallback = True
        return False
    records = outcome.result.records
    checks = outcome.checks
    cols = RecordColumns.from_records(records)
    times = array("d", [check[0] for check in checks])
    routers = array("q", [check[1] for check in checks])
    columns = _columns(cols, times, routers)
    total = _HEADER.size + sum(
        len(column) * column.itemsize for column in columns
    )
    try:
        segment = shared_memory.SharedMemory(create=True, size=total)
    except (OSError, ValueError):
        outcome.ring_fallback = True
        return False
    try:
        buf = segment.buf
        _HEADER.pack_into(buf, 0, _MAGIC, len(records), len(checks))
        offset = _HEADER.size
        for column in columns:
            view = memoryview(column).cast("B")
            end = offset + len(view)
            buf[offset:end] = view
            offset = end
        _disinherit(segment)
    except BaseException:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        outcome.ring_fallback = True
        return False
    name = segment.name
    segment.close()
    outcome.ring = RingHandle(
        name=name, nbytes=total, records=len(records), checks=len(checks)
    )
    outcome.result.records = []
    outcome.checks = []
    return True


def drain_outcome(
    outcome: "ShardOutcome", stats: RingStats | None = None
) -> None:
    """Rebuild an outcome's records and checks from its ring frame.

    Runs in the parent, before the merge or the checkpoint journal ever
    look at the outcome.  Idempotent: outcomes without a frame (thread
    and serial shards, pickle fallbacks, already-drained or journal-
    restored outcomes) pass through untouched.  The segment is unlinked
    here — the parent owns the frame's lifetime.
    """
    if stats is not None and getattr(outcome, "ring_fallback", False):
        stats.fallbacks += 1
        outcome.ring_fallback = False
    handle = getattr(outcome, "ring", None)
    if handle is None:
        return
    records, checks = _read_frame(handle)
    outcome.result.records = records
    outcome.checks = checks
    outcome.ring = None
    if stats is not None:
        stats.segments += 1
        stats.bytes += handle.nbytes
        stats.records += handle.records
        stats.checks += handle.checks


def _read_frame(handle: RingHandle) -> tuple[list, list[tuple[float, int]]]:
    if shared_memory is None:  # pragma: no cover - handle implies support
        raise RuntimeError(
            "received a shared-memory ring handle on a platform without "
            "multiprocessing.shared_memory"
        )
    segment = shared_memory.SharedMemory(name=handle.name)
    try:
        buf = segment.buf
        magic, n_records, n_checks = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise ValueError(
                f"shared-memory segment {handle.name!r} is not a ring frame"
            )
        if (n_records, n_checks) != (handle.records, handle.checks):
            raise ValueError(
                f"ring frame {handle.name!r} header disagrees with its "
                f"handle: frame has ({n_records}, {n_checks}) rows, handle "
                f"claims ({handle.records}, {handle.checks})"
            )
        cols = RecordColumns.empty(n_records)
        times = array("d", bytes(8 * n_checks))
        routers = array("q", bytes(8 * n_checks))
        offset = _HEADER.size
        for column in _columns(cols, times, routers):
            view = memoryview(column).cast("B")
            end = offset + len(view)
            view[:] = buf[offset:end]
            offset = end
        return cols.to_records(), list(zip(times, routers))
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def release_outcome(outcome: "ShardOutcome") -> None:
    """Unlink an undrained frame whose payload will never be merged.

    Failure/interrupt cleanup: a segment nobody unlinks outlives the
    process in ``/dev/shm``.  Best-effort by design — a frame that never
    finished being created simply is not there to release.
    """
    handle = getattr(outcome, "ring", None)
    outcome.ring = None
    if handle is None or shared_memory is None:
        return
    try:
        segment = shared_memory.SharedMemory(name=handle.name)
    except (OSError, ValueError):
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - raced cleanup
        pass
