"""Named target lists: the survey's five input sets, materialised.

The paper's Go address-generation tool streams targets into ZMap; here a
:class:`TargetList` pairs the generated addresses with provenance so that
results can be keyed by input set (Table 2).  Budgets (``max_targets``,
``max_per_prefix``) implement the scale-down: sampling, never truncation
in address order, so selection semantics survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..addr.ipv6 import AddressError, IPv6Prefix, format_address, parse_address
from ..addr.partition import (
    hitlist_targets,
    route6_targets,
    stage1_targets,
    stage2_targets,
    stage3_targets,
)
from ..bgp.table import BGPTable
from ..hitlist.hitlist import Hitlist
from ..irr.database import IRRDatabase


@dataclass(slots=True)
class TargetList:
    """A named, ordered, deduplicated list of probe targets."""

    name: str
    targets: list[int] = field(default_factory=list)
    subnet_length: int | None = None  # /64 for stage-3 style lists

    def __len__(self) -> int:
        return len(self.targets)

    def __iter__(self):
        return iter(self.targets)

    def __getitem__(self, index: "int | slice") -> "int | list[int]":
        # Slices return a plain list, matching the TargetStream contract
        # (ListStream wraps TargetLists directly, so both must agree).
        return self.targets[index]

    def head(self, k: int) -> "TargetList":
        """The first ``k`` targets in list order.

        Discovery strategies use this to cut a probe-budget window out of
        a generated list: the list order *is* the selection priority
        (hitlist order, entropy rank, ...), so unlike the input-set
        budgets — where sampling preserves selection semantics — a head
        window is the intended semantics, not a truncation artefact.
        """
        if k < 0:
            raise ValueError(f"head window must be >= 0, got {k}")
        return TargetList(
            name=self.name,
            targets=self.targets[:k],
            subnet_length=self.subnet_length,
        )

    def sample(self, k: int, rng: random.Random) -> "TargetList":
        """A uniform sub-sample (used to bound benchmark runtimes).

        Always returns a fresh list, even when ``k`` covers every target:
        returning ``self`` there let callers that mutate the sample
        corrupt the original.
        """
        if k >= len(self.targets):
            return TargetList(
                name=self.name,
                targets=list(self.targets),
                subnet_length=self.subnet_length,
            )
        return TargetList(
            name=self.name,
            targets=rng.sample(self.targets, k),
            subnet_length=self.subnet_length,
        )

    def save(self, path: str | Path) -> None:
        """Write one target per line — the format the paper's Go address
        generator feeds into ZMapv6."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# targets: {self.name}")
            if self.subnet_length is not None:
                handle.write(f" (subnet length /{self.subnet_length})")
            handle.write(f" [{len(self.targets)}]\n")
            for target in self.targets:
                handle.write(format_address(target) + "\n")

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        name: str | None = None,
        subnet_length: int | None = None,
    ) -> "TargetList":
        """Read one address per line; blanks and ``#`` comments ignored.

        A malformed line raises :class:`AddressError` carrying the file
        path, line number, *and* the offending line text.
        """

        def parsed(handle) -> Iterable[int]:
            for line_number, line in enumerate(handle, start=1):
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                try:
                    yield parse_address(text)
                except AddressError as exc:
                    raise AddressError(
                        f"{path}:{line_number}: {text!r}: {exc}"
                    ) from exc

        with open(path, "r", encoding="utf-8") as handle:
            targets = _bounded(parsed(handle), None)
        return cls(
            name=name or Path(path).stem,
            targets=targets,
            subnet_length=subnet_length,
        )


def _bounded(targets: Iterable[int], max_targets: int | None) -> list[int]:
    """Order-preserving dedup with an optional size bound.

    The one place the "first occurrence wins, stop at the budget" rule
    lives — shared by the five input-set builders and
    :meth:`TargetList.load`, which previously each carried their own
    copy.  Enforces the class contract that a :class:`TargetList` is
    deduplicated (the partition generators already emit unique targets,
    so for them this is belt and braces).
    """
    bounded: list[int] = []
    seen: set[int] = set()
    for target in targets:
        if target in seen:
            continue
        seen.add(target)
        bounded.append(target)
        if max_targets is not None and len(bounded) >= max_targets:
            break
    return bounded


def bgp_plain_targets(bgp: BGPTable, *, max_targets: int | None = None) -> TargetList:
    """Stage 1: the SRA address of every announced prefix."""
    return TargetList(
        name="bgp-plain",
        targets=_bounded(stage1_targets(bgp.prefixes()), max_targets),
    )


def bgp_slash48_targets(
    bgp: BGPTable,
    *,
    max_per_prefix: int | None = None,
    max_targets: int | None = None,
    rng: random.Random | None = None,
) -> TargetList:
    """Stage 2: SRA addresses of the /48 partition of all announcements."""
    return TargetList(
        name="bgp-48",
        targets=_bounded(
            stage2_targets(bgp.prefixes(), max_per_prefix=max_per_prefix, rng=rng),
            max_targets,
        ),
        subnet_length=48,
    )


def bgp_slash64_targets(
    bgp: BGPTable,
    *,
    max_per_prefix: int | None = None,
    max_targets: int | None = None,
    rng: random.Random | None = None,
) -> TargetList:
    """Stage 3: SRA addresses of the /64 partition of /48 announcements."""
    return TargetList(
        name="bgp-64",
        targets=_bounded(
            stage3_targets(bgp.prefixes(), max_per_prefix=max_per_prefix, rng=rng),
            max_targets,
        ),
        subnet_length=64,
    )


def route6_slash64_targets(
    irr: IRRDatabase,
    *,
    per_prefix: int = 64,
    max_targets: int | None = None,
    rng: random.Random,
) -> TargetList:
    """Random /64 SRA addresses under each registered route6 prefix."""
    return TargetList(
        name="route6-64",
        targets=_bounded(
            route6_targets(irr.prefixes(), per_prefix=per_prefix, rng=rng),
            max_targets,
        ),
        subnet_length=64,
    )


def hitlist_slash64_targets(
    hitlist: Hitlist | Sequence[int],
    *,
    max_targets: int | None = None,
) -> TargetList:
    """Distinct /64 SRAs cut from hitlist host addresses."""
    addresses: Iterable[int] = (
        hitlist if not isinstance(hitlist, Hitlist) else iter(hitlist)
    )
    return TargetList(
        name="hitlist-64",
        targets=_bounded(hitlist_targets(addresses), max_targets),
        subnet_length=64,
    )


def prefixes_of_targets(target_list: TargetList) -> list[IPv6Prefix]:
    """Interpret a /N-style target list as subnet prefixes again."""
    if target_list.subnet_length is None:
        raise ValueError(f"target list {target_list.name!r} has no subnet length")
    return [
        IPv6Prefix(target, target_list.subnet_length) for target in target_list
    ]
