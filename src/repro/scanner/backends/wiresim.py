"""``wire-sim``: the byte-accurate wire round trip over the simulator.

Every probe is encoded into its full on-the-wire IPv6+ICMPv6 bytes,
decoded back, sent through the wrapped :class:`~repro.scanner.backends.\
sim.SimBackend`, and every simulated reply is synthesised as wire bytes,
re-decoded, and matched via the authenticated payload — exactly the
receive path a real scanner runs.  Slower than ``sim``, byte-identical in
output (the round trip proves the codecs; it never changes an outcome),
which is what lets the raw backend reuse this matching logic with
confidence.

This used to be an inline ``wire_format`` branch in ``zmapv6.py``; it is
now a backend like any other, and the branch is gone.  One behavioural
fix rode along: replies that fail payload extraction/validation were
silently dropped before — they now count into
:attr:`~repro.scanner.backends.base.ProbeBackend.unmatched_replies`, so
the raw backend (where unmatched traffic is the norm, not a codec bug)
inherits visible loss accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ...packet.icmpv6 import (
    ICMPv6Message,
    ICMPv6Type,
    echo_reply_for,
    error_message,
)
from ...packet.ipv6hdr import HEADER_LENGTH, IPv6Header
from ...packet.probe import build_probe_packet, extract_probe
from .base import BackendSpec, ProbeBackend, make_backend_spec, register_backend
from .sim import SimBackend

if TYPE_CHECKING:
    from ...netsim.engine import EngineStats, ProbeResult, SimulationEngine
    from ...topology.entities import World

# The scanner's default probe-authentication key (mirrors ScanConfig.key;
# kept here so backends never import the scanner module).
DEFAULT_PROBE_KEY = b"sra-probing-key-0123456789abcdef"


class WireSimBackend(ProbeBackend):
    """Wire-format encode/decode round trip wrapping the ``sim`` backend."""

    name = "wire-sim"
    supports_columns = False
    deterministic = True
    requires_privilege = False

    def __init__(self, inner: SimBackend, *, key: bytes = DEFAULT_PROBE_KEY) -> None:
        self.inner = inner
        self.key = key
        self.unmatched_replies = 0

    @classmethod
    def from_spec(
        cls,
        spec: BackendSpec,
        *,
        world: "World | None" = None,
        engine: "SimulationEngine | None" = None,
        epoch: int = 0,
        defer_rate_limit: bool = False,
    ) -> "WireSimBackend":
        options = spec.arguments()
        inner = SimBackend.from_spec(
            spec,
            world=world,
            engine=engine,
            epoch=epoch,
            defer_rate_limit=defer_rate_limit,
        )
        return cls(inner, key=options.get("key", DEFAULT_PROBE_KEY))

    def spec(self) -> BackendSpec:
        return make_backend_spec(self.name, key=self.key)

    # ---------------- delegation to the wrapped simulator ---------------- #

    @property
    def engine(self) -> "SimulationEngine":
        return self.inner.engine

    @property
    def epoch(self) -> int:
        return self.inner.epoch

    def new_epoch(self, epoch: int) -> None:
        self.inner.new_epoch(epoch)

    @property
    def stats(self) -> "EngineStats":
        return self.inner.stats

    @property
    def pending_checks(self) -> list[tuple[float, int]]:
        return self.inner.pending_checks

    @property
    def telemetry(self):
        return self.inner.telemetry

    @telemetry.setter
    def telemetry(self, collector) -> None:
        self.inner.telemetry = collector

    # ---------------- probing ---------------- #

    def probe(
        self, target: int, time: float, *, hop_limit: int = 64, probe_id: int = 0
    ) -> "ProbeResult":
        """Full wire-format round trip: encode the probe, decode it, probe
        the simulator, synthesise reply bytes, and re-match via the payload."""
        vantage = self.engine.world.vantage
        assert vantage is not None
        wire = build_probe_packet(
            src=vantage.address,
            target=target,
            probe_id=probe_id,
            key=self.key,
            hop_limit=hop_limit,
            identifier=probe_id & 0xFFFF,
            sequence=(probe_id >> 16) & 0xFFFF,
        )
        header = IPv6Header.decode(wire)
        request = ICMPv6Message.decode(
            wire[HEADER_LENGTH:], src=header.src, dst=header.dst
        )
        outcome = self.inner.probe(
            header.dst, time, hop_limit=header.hop_limit, probe_id=probe_id
        )
        matched = []
        for reply in outcome.replies:
            if reply.icmp_type is ICMPv6Type.ECHO_REPLY:
                message = echo_reply_for(request)
            else:
                message = error_message(reply.icmp_type, reply.code, wire)
            # Receive path: decode bytes, then recover the probed target.
            raw = message.encode(reply.source, vantage.address)
            decoded = ICMPv6Message.decode(
                raw, src=reply.source, dst=vantage.address
            )
            extraction = extract_probe(decoded, self.key)
            if extraction is None:
                self.unmatched_replies += 1
                continue  # unmatched traffic; zmap drops it
            payload, original_target = extraction
            if payload.probe_id != probe_id or original_target != target:
                self.unmatched_replies += 1
                continue
            matched.append(reply)
        if len(matched) == len(outcome.replies):
            return outcome
        from ...netsim.engine import ProbeResult as _ProbeResult

        return _ProbeResult(
            target=outcome.target,
            time=outcome.time,
            epoch=outcome.epoch,
            replies=tuple(matched),
            lost=outcome.lost,
            looped=outcome.looped,
            amplification=outcome.amplification,
            transit_hops=outcome.transit_hops,
        )

    def send_batch(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
    ) -> "list[ProbeResult]":
        if probe_ids is None:
            probe_ids = [0] * len(targets)
        return [
            self.probe(target, time, hop_limit=hop_limit, probe_id=probe_id)
            for target, time, probe_id in zip(targets, times, probe_ids)
        ]


register_backend(WireSimBackend.name, WireSimBackend)
