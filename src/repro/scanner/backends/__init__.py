"""Probe backends: simulator, wire-format loopback, raw-socket ICMPv6.

Importing this package registers the three stock backends (``sim``,
``wire-sim``, ``raw``) — it is the default ``module`` of every
:class:`BackendSpec`, so pool workers rebuilding a backend from a spec
resolve them without any other import.
"""

from .base import (
    BackendAuthorizationError,
    BackendError,
    BackendPrivilegeError,
    BackendSpec,
    ProbeBackend,
    backend_class,
    backend_names,
    build_backend,
    make_backend_spec,
    register_backend,
)
from .raw import RawSocketBackend
from .resilient import (
    BackendFault,
    BackendTimeoutError,
    CircuitBreaker,
    ResilienceStats,
    ResilientBackend,
    RetryPolicy,
)
from .sim import SimBackend
from .wiresim import DEFAULT_PROBE_KEY, WireSimBackend

__all__ = [
    "DEFAULT_PROBE_KEY",
    "BackendAuthorizationError",
    "BackendError",
    "BackendFault",
    "BackendPrivilegeError",
    "BackendSpec",
    "BackendTimeoutError",
    "CircuitBreaker",
    "ProbeBackend",
    "RawSocketBackend",
    "ResilienceStats",
    "ResilientBackend",
    "RetryPolicy",
    "SimBackend",
    "WireSimBackend",
    "backend_class",
    "backend_names",
    "build_backend",
    "make_backend_spec",
    "register_backend",
]
