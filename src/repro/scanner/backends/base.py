"""The ``ProbeBackend`` protocol: one seam between scanner and wire.

The paper's measurement tool is a real ZMapv6 sending ICMPv6 over a NIC;
this reproduction mostly drives a :class:`~repro.netsim.engine.\
SimulationEngine`.  Everything the scanner layers built — sharding,
streaming, checkpointing, telemetry, strategies — only cares about *one*
operation: "send these probes at these times, give me the outcomes".
``ProbeBackend`` is that operation as an interface, so the simulator, the
wire-format loopback, and a raw-socket ICMPv6 sender are interchangeable
underneath the whole stack.

Two pieces mirror the target-stream machinery in
:mod:`repro.scanner.stream`:

* :class:`BackendSpec` — a picklable recipe (``name`` + option pairs),
  the only backend representation that ever crosses a pickle boundary.
  Sharded pool workers rebuild their backend from the spec exactly the
  way they rebuild streams from ``StreamSpec`` and worlds from
  ``WorldRef`` — no live sockets or engines are ever pickled.
* a registry — :func:`register_backend` / :func:`build_backend` /
  :func:`backend_names` — keyed by spec name, importing the spec's
  module on demand so workers that never imported the registering
  module still resolve it.

Capability flags are class-level, readable without instantiating (the
sharded runner refuses non-deterministic backends *before* building
anything):

* ``supports_columns`` — the backend offers the columnar
  ``probe_columns`` hot path (today: the simulator only),
* ``deterministic`` — byte-identical outcomes for identical inputs;
  required for sharded merges, checkpoint resume, and golden tests,
* ``requires_privilege`` — needs raw-socket privileges (and explicit
  authorization) to open.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Sequence

if TYPE_CHECKING:  # concrete outcome types come from the engine module
    from ...netsim.engine import EngineStats, ProbeColumns, ProbeResult
    from ...topology.entities import World


class BackendError(Exception):
    """Base class for backend construction/lifecycle failures."""


class BackendAuthorizationError(BackendError):
    """A backend that probes real networks was built without explicit
    authorization (``--i-am-authorized``)."""


class BackendPrivilegeError(BackendError):
    """The process lacks the privileges the backend needs (raw sockets)."""


@dataclass(frozen=True)
class BackendSpec:
    """A picklable recipe: which registered backend, built how.

    The backend twin of :class:`repro.scanner.stream.StreamSpec`:
    ``module`` is imported before lookup so pool workers resolve the
    builder without having imported the registering module, and
    ``options`` is a tuple of ``(key, value)`` pairs, keeping the spec
    hashable and pickle-stable.
    """

    name: str
    module: str = "repro.scanner.backends"
    options: tuple[tuple[str, object], ...] = ()

    def arguments(self) -> dict[str, object]:
        return dict(self.options)


def make_backend_spec(
    name: str, module: str = "repro.scanner.backends", **options
) -> BackendSpec:
    return BackendSpec(
        name=name, module=module, options=tuple(sorted(options.items()))
    )


class ProbeBackend(ABC):
    """Sends probe batches somewhere and returns their outcomes.

    The contract every backend honours (pinned by the backend contract
    suite in ``tests/backend_contract.py``):

    * :meth:`send_batch` returns one
      :class:`~repro.netsim.engine.ProbeResult` per input row, in input
      order — outcome ``i`` answers probe ``i``, matched by probe id,
      never by arrival order,
    * :meth:`spec` round-trips through :func:`build_backend` to an
      equivalent backend (same name, same capability flags),
    * lifecycle is idempotent: :meth:`open` before the first send (the
      scanner calls it defensively), :meth:`close` when done; both are
      no-ops where there is nothing to hold open,
    * :attr:`stats` / :attr:`pending_checks` / :attr:`unmatched_replies`
      expose the same observability surface the simulation engine does,
      so every layer above reads one shape.
    """

    name: ClassVar[str] = "abstract"
    supports_columns: ClassVar[bool] = False
    deterministic: ClassVar[bool] = True
    requires_privilege: ClassVar[bool] = False

    #: Replies that arrived but failed probe extraction/validation and
    #: were dropped (zmap's "validation failed" drop).  Cumulative over
    #: the backend's lifetime; the scanner reports per-scan deltas.
    unmatched_replies: int = 0

    # ---------------- construction ---------------- #

    @classmethod
    @abstractmethod
    def from_spec(
        cls,
        spec: BackendSpec,
        *,
        world: "World | None" = None,
        engine=None,
        epoch: int = 0,
        defer_rate_limit: bool = False,
    ) -> "ProbeBackend":
        """Rebuild a backend from its picklable spec.

        ``world`` (and optionally a pre-built ``engine``) ground the
        simulated backends; wire backends ignore both.  ``epoch`` and
        ``defer_rate_limit`` parameterise a freshly-built engine the way
        :func:`repro.scanner.sharded.scan_shard` needs it.
        """

    @abstractmethod
    def spec(self) -> BackendSpec:
        """The picklable recipe that rebuilds this backend."""

    # ---------------- lifecycle ---------------- #

    def open(self) -> None:
        """Acquire whatever the backend sends through (idempotent)."""

    def close(self) -> None:
        """Release it (idempotent)."""

    def __enter__(self) -> "ProbeBackend":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------- epoch + observability ---------------- #

    @property
    @abstractmethod
    def epoch(self) -> int:
        """The current scan epoch (scopes probe ids and stochastic draws)."""

    @abstractmethod
    def new_epoch(self, epoch: int) -> None:
        """Start a new scan epoch: reset counters and per-epoch state."""

    @property
    @abstractmethod
    def stats(self) -> "EngineStats":
        """Aggregate counters since the last :meth:`new_epoch`."""

    @property
    def pending_checks(self) -> list[tuple[float, int]]:
        """Deferred rate-limit checks recorded this epoch (simulated
        backends in ``defer_rate_limit`` mode; empty elsewhere)."""
        return []

    @property
    def needs_probe_ids(self) -> bool:
        """Whether the batched path must materialise the probe-id column.

        The simulator only reads probe ids when loss draws exist; wire
        backends always encode them into payloads.
        """
        return True

    # Hot-path observability hook (duck-typed HotPathCollector), set by
    # the scanner for the duration of an instrumented scan.  Simulated
    # backends forward it to their engine; others may ignore it.
    telemetry = None

    def pop_warnings(self) -> list[str]:
        """Drain queued operational warnings (e.g. a receiver thread
        that refused to join).  The scanner surfaces them on the ops
        telemetry channel; wrapper backends delegate to the wrapped
        backend.  Empty for backends with nothing to warn about."""
        return []

    # ---------------- probing ---------------- #

    @abstractmethod
    def send_batch(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
    ) -> "list[ProbeResult]":
        """Send one probe per ``(target, time)`` row; one outcome per row,
        in row order, replies matched back by probe id."""

    def probe(
        self, target: int, time: float, *, hop_limit: int = 64, probe_id: int = 0
    ) -> "ProbeResult":
        """Single-probe convenience over :meth:`send_batch`."""
        return self.send_batch(
            [target], [time], hop_limit=hop_limit, probe_ids=[probe_id]
        )[0]

    def probe_columns(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
        out: "ProbeColumns | None" = None,
    ) -> "ProbeColumns":
        """The columnar kernel; only when :attr:`supports_columns`."""
        raise NotImplementedError(
            f"backend {self.name!r} has no columnar probe path"
        )


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

_BACKENDS: dict[str, type[ProbeBackend]] = {}


def register_backend(name: str, cls: type[ProbeBackend]) -> type[ProbeBackend]:
    """Register a backend class under its spec name."""
    _BACKENDS[name] = cls
    return cls


def backend_names() -> list[str]:
    """Registered backend names, sorted (the ``--backend`` choices)."""
    return sorted(_BACKENDS)


def backend_class(
    name: str, module: str = "repro.scanner.backends"
) -> type[ProbeBackend]:
    """Resolve a backend class by name, importing ``module`` on demand.

    This is how capability flags (``deterministic``, ...) are read
    without building a backend — and therefore without tripping the raw
    backend's authorization check.
    """
    if name not in _BACKENDS:
        importlib.import_module(module)
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"no probe backend registered as {name!r} "
            f"(choose from {', '.join(backend_names())})"
        ) from None


def build_backend(
    spec: BackendSpec,
    world: "World | None" = None,
    *,
    engine=None,
    epoch: int = 0,
    defer_rate_limit: bool = False,
) -> ProbeBackend:
    """Rebuild the backend a spec describes (what pool workers run)."""
    cls = backend_class(spec.name, spec.module)
    return cls.from_spec(
        spec,
        world=world,
        engine=engine,
        epoch=epoch,
        defer_rate_limit=defer_rate_limit,
    )
