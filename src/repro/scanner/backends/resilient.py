"""``ResilientBackend``: retry, timeout, breaker, and quarantine at the seam.

PR 5 made the scanner crash-tolerant at the *shard process* level: a
dead worker costs a whole-shard retry.  That is the wrong granularity
for transient transport trouble — one failed ``send_batch`` out of
thousands, a wedged raw socket, an RFC 4443 rate limiter eating a burst.
This module adds resilience at the :class:`ProbeBackend` seam itself,
where a fault costs at most one batch:

* :class:`RetryPolicy` — a declarative, picklable knob bundle.  It rides
  :class:`~repro.scanner.zmapv6.ScanConfig` across the pickle boundary
  to pool workers and into the checkpoint config key, so resuming a
  journal across a policy change fails loudly instead of silently
  merging runs with different failure semantics.
* :class:`CircuitBreaker` — the classic three-state machine (closed →
  open → half-open) over a sliding window of *final* batch outcomes.
  While open, batches fail fast into quarantine without touching the
  backend; after a cooldown one trial batch decides re-close vs re-open.
* :class:`ResilientBackend` — a wrapper that retries failed batches with
  seeded exponential backoff (deterministic jitter via
  :func:`~repro.netsim.stochastic.stable_unit`), recovers hung sends
  with a watchdog deadline, and — when retries are exhausted — bisects
  the batch to isolate poison probes, quarantining only those as
  explicit :class:`BackendFault` outcomes.  Quarantined probes surface
  as quiet rows (probed, no reply) plus ``ScanResult.faulted_probes``,
  so a scan under permanent faults completes with an honest partial
  result instead of dying.

Every attempt is transactional: the wrapper snapshots the inner
backend's ``stats``, ``pending_checks`` length, and ``unmatched_replies``
before delegating and rolls all three back on failure, so a retried
batch never double-counts probes or double-appends deferred rate-limit
checks — the property that keeps retried runs byte-identical to
fault-free ones (pinned by the backend contract suite).

The wrapper is built *around* an existing backend (never from a spec,
never registered): nesting a policy inside ``BackendSpec`` options would
break the plain-data spec contract.  ``supports_columns`` is ``False``
on the wrapper — resilient scans take the ``send_batch`` path, whose
records/telemetry are byte-identical to the columnar path's (the hot
path determinism suite pins that equivalence), trading kernel throughput
for per-batch rollback only when a policy is actually configured.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Callable, Sequence

from ...netsim.engine import ProbeResult
from ...netsim.stochastic import stable_unit
from .base import BackendError, BackendSpec, ProbeBackend

if TYPE_CHECKING:
    from ...netsim.engine import EngineStats
    from ...topology.entities import World


class BackendTimeoutError(BackendError):
    """A ``send_batch`` call exceeded the policy's watchdog deadline."""


_JITTER_PURPOSE = b"backend-retry-jitter"


def _finite(value: float) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative resilience knobs for one scan.

    Frozen, hashable, picklable: it travels inside ``ScanConfig`` to
    pool workers and into ``config_key`` (so checkpoint resume across a
    policy change raises ``CheckpointMismatchError``).  With the default
    ``jitter=0.0`` the backoff schedule is exactly the sharded runner's
    historical ``min(backoff * 2**attempt, cap)``.
    """

    #: Retries per batch after the first attempt (0 = fail immediately).
    max_retries: int = 2
    #: Base backoff delay in seconds; doubles per retry.
    backoff: float = 0.05
    #: Backoff ceiling in seconds.
    backoff_cap: float = 5.0
    #: Fraction of each delay that is randomised, in [0, 1].  The draw
    #: is deterministic (``stable_unit`` keyed by seed/shard/batch/
    #: attempt), so two runs of the same scan back off identically.
    jitter: float = 0.0
    #: Seed for the jitter draws (scans pass their scan seed).
    seed: int = 0
    #: Per-batch watchdog deadline in wall seconds; ``None`` disables
    #: the watchdog thread entirely (direct delegation).
    timeout: float | None = None
    #: Windowed batch failure rate in (0, 1] that opens the breaker;
    #: ``None`` disables the breaker.
    breaker_threshold: float | None = None
    #: Sliding window of final batch outcomes the rate is computed over.
    breaker_window: int = 8
    #: Minimum outcomes in the window before the breaker may open.
    breaker_min_batches: int = 4
    #: Seconds the breaker stays open before a half-open trial.
    breaker_cooldown: float = 1.0
    #: Bisect exhausted batches to isolate poison probes, up to this
    #: many levels deep (0 = quarantine the whole batch at once).
    max_split_depth: int = 2

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError("max_retries must be a non-negative integer")
        if not _finite(self.backoff) or self.backoff < 0:
            raise ValueError("backoff must be a finite non-negative number")
        if not _finite(self.backoff_cap) or self.backoff_cap < 0:
            raise ValueError("backoff_cap must be a finite non-negative number")
        if not _finite(self.jitter) or not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout is not None and (
            not _finite(self.timeout) or self.timeout <= 0
        ):
            raise ValueError("timeout must be a finite positive number")
        if self.breaker_threshold is not None and (
            not _finite(self.breaker_threshold)
            or not 0.0 < self.breaker_threshold <= 1.0
        ):
            raise ValueError("breaker_threshold must be in (0, 1]")
        if not isinstance(self.breaker_window, int) or self.breaker_window < 1:
            raise ValueError("breaker_window must be a positive integer")
        if (
            not isinstance(self.breaker_min_batches, int)
            or self.breaker_min_batches < 1
        ):
            raise ValueError("breaker_min_batches must be a positive integer")
        if not _finite(self.breaker_cooldown) or self.breaker_cooldown < 0:
            raise ValueError(
                "breaker_cooldown must be a finite non-negative number"
            )
        if not isinstance(self.max_split_depth, int) or self.max_split_depth < 0:
            raise ValueError("max_split_depth must be a non-negative integer")

    def backoff_delay(self, attempt: int, *keys: int) -> float:
        """Delay before retry ``attempt`` (0-based), in seconds.

        ``min(backoff * 2**attempt, backoff_cap)``, with the last
        ``jitter`` fraction replaced by a deterministic draw — the delay
        always lies in ``[base * (1 - jitter), base]`` and never exceeds
        ``backoff_cap``.
        """
        base = min(self.backoff * (2.0**attempt), self.backoff_cap)
        if self.jitter == 0.0 or base == 0.0:
            return base
        unit = stable_unit(self.seed, _JITTER_PURPOSE, *keys, attempt)
        return base * (1.0 - self.jitter) + base * self.jitter * unit


@dataclass(frozen=True)
class BackendFault:
    """One quarantined batch: the honest record of what was given up on."""

    batch: int  # batch ordinal within the scan (0-based)
    probes: int  # probes quarantined with it
    attempts: int  # send attempts made before giving up
    error: str  # last failure, e.g. "InjectedBackendError: ..."
    reason: str  # "exhausted" or "breaker-open"


@dataclass
class ResilienceStats:
    """Per-backend resilience counters (picklable; rides ShardOutcome)."""

    retries: int = 0
    timeouts: int = 0
    quarantined_batches: int = 0
    faulted_probes: int = 0
    breaker_fastfails: int = 0
    faults: list[BackendFault] = field(default_factory=list)
    #: Breaker state transitions, as (from_state, to_state) pairs.
    transitions: list[tuple[str, str]] = field(default_factory=list)

    def empty(self) -> bool:
        return (
            self.retries == 0
            and self.timeouts == 0
            and self.quarantined_batches == 0
            and self.faulted_probes == 0
            and self.breaker_fastfails == 0
            and not self.faults
            and not self.transitions
        )

    def copy(self) -> "ResilienceStats":
        return replace(
            self, faults=list(self.faults), transitions=list(self.transitions)
        )

    def since(self, before: "ResilienceStats") -> "ResilienceStats":
        """The delta accumulated after ``before`` was snapshotted."""
        return ResilienceStats(
            retries=self.retries - before.retries,
            timeouts=self.timeouts - before.timeouts,
            quarantined_batches=(
                self.quarantined_batches - before.quarantined_batches
            ),
            faulted_probes=self.faulted_probes - before.faulted_probes,
            breaker_fastfails=self.breaker_fastfails - before.breaker_fastfails,
            faults=self.faults[len(before.faults):],
            transitions=self.transitions[len(before.transitions):],
        )


class CircuitBreaker:
    """Three-state breaker over a sliding window of final batch outcomes.

    ``closed``: every batch is allowed; once the window holds at least
    ``min_batches`` outcomes and the failure rate reaches ``threshold``,
    the breaker opens.  ``open``: batches fail fast (the caller
    quarantines without touching the backend) until ``cooldown`` seconds
    pass on the injected clock.  ``half-open``: one trial batch runs;
    success re-closes, failure re-opens.
    """

    def __init__(
        self,
        *,
        threshold: float,
        window: int,
        min_batches: int,
        cooldown: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.min_batches = min_batches
        self.cooldown = cooldown
        self.clock = clock
        self.state = "closed"
        self.transitions: list[tuple[str, str]] = []
        self._window: deque[bool] = deque(maxlen=window)
        self._open_until = 0.0

    def _move(self, state: str) -> None:
        self.transitions.append((self.state, state))
        self.state = state

    def allow(self) -> bool:
        """Whether the next batch may touch the backend."""
        if self.state == "open":
            if self.clock() < self._open_until:
                return False
            self._move("half-open")
        return True

    def record(self, success: bool) -> None:
        """Record a batch's *final* outcome (after retries/quarantine)."""
        if self.state == "half-open":
            if success:
                self._move("closed")
                self._window.clear()
            else:
                self._move("open")
                self._open_until = self.clock() + self.cooldown
            return
        self._window.append(success)
        if success or len(self._window) < self.min_batches:
            return
        failures = sum(1 for ok in self._window if not ok)
        if failures / len(self._window) >= self.threshold:
            self._move("open")
            self._open_until = self.clock() + self.cooldown
            self._window.clear()


_FAILED = object()  # sentinel: an attempt loop exhausted its retries


class ResilientBackend(ProbeBackend):
    """Wraps any :class:`ProbeBackend` with a :class:`RetryPolicy`.

    Built around a live backend by the scanner (never from a spec):
    ``spec()`` and every capability/observability surface delegate to
    the wrapped backend, so the layers above see the inner backend with
    failure semantics changed underneath.
    """

    def __init__(
        self,
        inner: ProbeBackend,
        policy: RetryPolicy,
        *,
        shard: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        join: Callable[[threading.Thread, float], None] | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self.shard = shard
        self.resilience = ResilienceStats()
        self._sleep = sleep
        self._join = join if join is not None else threading.Thread.join
        self._batch_ordinal = -1
        self._last_error = ""
        self.breaker = None
        if policy.breaker_threshold is not None:
            self.breaker = CircuitBreaker(
                threshold=policy.breaker_threshold,
                window=policy.breaker_window,
                min_batches=policy.breaker_min_batches,
                cooldown=policy.breaker_cooldown,
                clock=clock,
            )
        # Instance-level capability flags mirror the wrapped backend —
        # except supports_columns: resilient scans take the send_batch
        # path (byte-identical output, per-batch rollback).
        self.name = inner.name
        self.supports_columns = False
        self.deterministic = inner.deterministic
        self.requires_privilege = inner.requires_privilege

    # ---------------- construction ---------------- #

    @classmethod
    def from_spec(
        cls,
        spec: BackendSpec,
        *,
        world: "World | None" = None,
        engine=None,
        epoch: int = 0,
        defer_rate_limit: bool = False,
    ) -> "ProbeBackend":
        raise TypeError(
            "ResilientBackend wraps a built backend; it is not spec-built "
            "(the policy rides ScanConfig, not BackendSpec options)"
        )

    def spec(self) -> BackendSpec:
        return self.inner.spec()

    # ---------------- lifecycle + delegation ---------------- #

    def open(self) -> None:
        self.inner.open()

    def close(self) -> None:
        self.inner.close()

    @property
    def epoch(self) -> int:
        return self.inner.epoch

    def new_epoch(self, epoch: int) -> None:
        self.inner.new_epoch(epoch)

    @property
    def stats(self) -> "EngineStats":
        return self.inner.stats

    @property
    def pending_checks(self) -> list[tuple[float, int]]:
        return self.inner.pending_checks

    @property
    def needs_probe_ids(self) -> bool:
        return self.inner.needs_probe_ids

    @property
    def engine(self):
        return getattr(self.inner, "engine", None)

    @property
    def telemetry(self):
        return self.inner.telemetry

    @telemetry.setter
    def telemetry(self, collector) -> None:
        self.inner.telemetry = collector

    @property
    def unmatched_replies(self) -> int:
        return self.inner.unmatched_replies

    def pop_warnings(self) -> list[str]:
        return self.inner.pop_warnings()

    # ---------------- probing ---------------- #

    def send_batch(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
    ) -> "list[ProbeResult]":
        self._batch_ordinal += 1
        ordinal = self._batch_ordinal
        if self.breaker is not None and not self.breaker.allow():
            # Fail fast: the breaker is open, the backend is not touched.
            self.resilience.breaker_fastfails += 1
            self._quarantine(ordinal, len(targets), 0, "breaker-open")
            return self._quiet(targets, times)
        outcomes, quarantined = self._recover(
            ordinal,
            targets,
            times,
            hop_limit,
            probe_ids,
            retries=self.policy.max_retries,
            depth=0,
        )
        if self.breaker is not None:
            self.breaker.record(not quarantined)
            self.resilience.transitions.extend(
                self.breaker.transitions[
                    len(self.resilience.transitions):
                ]
            )
        return outcomes

    def _recover(
        self,
        ordinal: int,
        targets: Sequence[int],
        times: Sequence[float],
        hop_limit: int,
        probe_ids: Sequence[int] | None,
        *,
        retries: int,
        depth: int,
    ) -> tuple["list[ProbeResult]", bool]:
        """Attempt a (sub-)batch; on exhaustion split or quarantine.

        Returns ``(outcomes, any_quarantined)`` — always one outcome per
        probe, quiet rows standing in for quarantined ones.
        """
        outcomes = self._attempts(
            ordinal, targets, times, hop_limit, probe_ids, retries
        )
        if outcomes is not _FAILED:
            return outcomes, False
        if len(targets) > 1 and depth < self.policy.max_split_depth:
            # Bisect to isolate poison probes: each half gets one shot.
            mid = len(targets) // 2
            ids_left = probe_ids[:mid] if probe_ids is not None else None
            ids_right = probe_ids[mid:] if probe_ids is not None else None
            left, left_bad = self._recover(
                ordinal, targets[:mid], times[:mid], hop_limit, ids_left,
                retries=0, depth=depth + 1,
            )
            right, right_bad = self._recover(
                ordinal, targets[mid:], times[mid:], hop_limit, ids_right,
                retries=0, depth=depth + 1,
            )
            return left + right, left_bad or right_bad
        self._quarantine(ordinal, len(targets), retries + 1, "exhausted")
        return self._quiet(targets, times), True

    def _attempts(
        self,
        ordinal: int,
        targets: Sequence[int],
        times: Sequence[float],
        hop_limit: int,
        probe_ids: Sequence[int] | None,
        retries: int,
    ):
        for attempt in range(retries + 1):
            if attempt:
                self.resilience.retries += 1
                delay = self.policy.backoff_delay(
                    attempt - 1, self.shard, ordinal
                )
                if delay > 0:
                    self._sleep(delay)
            marker = self._begin_attempt()
            try:
                outcomes = self._call(targets, times, hop_limit, probe_ids)
            except Exception as error:  # noqa: BLE001 — any backend fault
                self._rollback(marker)
                self._last_error = f"{type(error).__name__}: {error}"
                if isinstance(error, BackendTimeoutError):
                    self.resilience.timeouts += 1
                continue
            if len(outcomes) != len(targets):
                # Short/partial outcome list: a seam-contract violation
                # (lost alignment would corrupt the merge) — roll back
                # and retry the whole batch.
                self._rollback(marker)
                self._last_error = (
                    f"short outcome list ({len(outcomes)}/{len(targets)})"
                )
                continue
            return outcomes
        return _FAILED

    def _call(self, targets, times, hop_limit, probe_ids):
        if self.policy.timeout is None:
            return self.inner.send_batch(
                targets, times, hop_limit=hop_limit, probe_ids=probe_ids
            )
        # Watchdog: run the send on a daemon thread and abandon it at
        # the deadline.  A well-behaved hung call (e.g. FaultyBackend's
        # injected hang) blocks *before* mutating shared state and
        # raises when released at close, so abandonment is safe.
        box: list = []

        def run() -> None:
            try:
                box.append((
                    "ok",
                    self.inner.send_batch(
                        targets, times,
                        hop_limit=hop_limit, probe_ids=probe_ids,
                    ),
                ))
            except BaseException as error:  # noqa: BLE001 — reraised below
                box.append(("err", error))

        thread = threading.Thread(
            target=run, name="resilient-send", daemon=True
        )
        thread.start()
        self._join(thread, self.policy.timeout)
        if not box:
            raise BackendTimeoutError(
                f"send_batch exceeded the {self.policy.timeout}s deadline"
            )
        kind, value = box[0]
        if kind == "err":
            raise value
        return value

    # ---------------- transactional attempts ---------------- #

    def _begin_attempt(self):
        stats = self.inner.stats
        return (
            {f.name: getattr(stats, f.name) for f in fields(stats)},
            len(self.inner.pending_checks),
            self.inner.unmatched_replies,
        )

    def _rollback(self, marker) -> None:
        snapshot, check_count, unmatched = marker
        stats = self.inner.stats
        for name, value in snapshot.items():
            setattr(stats, name, value)
        checks = self.inner.pending_checks
        del checks[check_count:]
        self.inner.unmatched_replies = unmatched

    # ---------------- quarantine ---------------- #

    def _quarantine(
        self, ordinal: int, probes: int, attempts: int, reason: str
    ) -> None:
        self.resilience.quarantined_batches += 1
        self.resilience.faulted_probes += probes
        self.resilience.faults.append(
            BackendFault(
                batch=ordinal,
                probes=probes,
                attempts=attempts,
                error=self._last_error if reason == "exhausted" else reason,
                reason=reason,
            )
        )

    def _quiet(
        self, targets: Sequence[int], times: Sequence[float]
    ) -> "list[ProbeResult]":
        # Quarantined probes become quiet rows — "probed, no reply" —
        # keeping outcome alignment and `sent` honest while
        # faulted_probes says how many of those silences were ours.
        epoch = self.inner.epoch
        return [
            ProbeResult(target=target, time=when, epoch=epoch)
            for target, when in zip(targets, times)
        ]
