"""``raw``: opt-in raw-socket ICMPv6 echo probing of real networks.

The only backend that leaves the process.  It is **never** a default:
construction requires ``authorized=True`` (the CLIs map this to an
explicit ``--i-am-authorized`` flag), and :meth:`open` converts a
raw-socket permission failure into a typed
:class:`~repro.scanner.backends.base.BackendPrivilegeError` — unprivileged
environments (CI, tests) can import, spec-validate, and reason about this
backend without ever opening a socket.

Send path: probes are encoded with the same byte-accurate
:mod:`repro.packet` codecs the ``wire-sim`` backend proves out (the
kernel prepends the IPv6 header and fixes the ICMPv6 checksum on
``IPPROTO_ICMPV6`` raw sockets, so only the ICMPv6 bytes are written).
Pacing follows :func:`repro.scanner.pacing.paced_pps` — the shared rate
policy of the whole reproduction — realised on the wall clock.

Receive path: an asynchronous thread decodes every inbound ICMPv6
message and recovers the probed target via
:func:`repro.packet.probe.extract_probe`; only replies that authenticate
against this scan's key and match an outstanding probe id are kept
(zmap's validation discipline).  Everything else — other hosts' traffic,
scans by third parties, our own looped-back Echo Requests excepted —
counts into ``unmatched_replies``, the same visible-loss accounting the
wire-sim backend introduced.

Operational discipline follows the scanning-etiquette literature the
issue cites: a hard rate ceiling, probe-order target permutation
upstream (the scanner spreads probes across networks), and a scan key
that makes our probes attributable and filterable.
"""

from __future__ import annotations

import socket
import struct
import threading
import time as wallclock
from typing import TYPE_CHECKING, Sequence

from ...netsim.engine import EngineStats, ProbeResult, Reply
from ...packet.icmpv6 import ICMPv6Message, ICMPv6Type, echo_request
from ...packet.ipv6hdr import PacketError
from ...packet.probe import encode_payload, extract_probe
from ..pacing import paced_pps
from .base import (
    BackendAuthorizationError,
    BackendPrivilegeError,
    BackendSpec,
    ProbeBackend,
    make_backend_spec,
    register_backend,
)
from .wiresim import DEFAULT_PROBE_KEY

if TYPE_CHECKING:
    from ...topology.entities import World


def _address_text(address: int) -> str:
    return socket.inet_ntop(
        socket.AF_INET6, address.to_bytes(16, "big")
    )


def _address_int(text: str) -> int:
    return int.from_bytes(socket.inet_pton(socket.AF_INET6, text), "big")


class RawSocketBackend(ProbeBackend):
    """ICMPv6 Echo probing through a raw socket; explicit opt-in only."""

    name = "raw"
    supports_columns = False
    deterministic = False
    requires_privilege = True

    def __init__(
        self,
        *,
        key: bytes = DEFAULT_PROBE_KEY,
        authorized: bool = False,
        pps: float = 1_000.0,
        linger: float = 1.0,
        recv_timeout: float = 0.2,
    ) -> None:
        if not authorized:
            raise BackendAuthorizationError(
                "the raw backend probes real networks; pass "
                "authorized=True (--i-am-authorized) only for targets "
                "you are permitted to scan"
            )
        if pps <= 0:
            raise ValueError(f"pps ceiling must be positive, got {pps}")
        if linger < 0:
            raise ValueError(f"linger must be >= 0, got {linger}")
        if recv_timeout <= 0:
            raise ValueError(f"recv_timeout must be positive, got {recv_timeout}")
        self.key = key
        self.pps = pps
        self.linger = linger
        # Socket receive timeout: the receiver thread's shutdown-check
        # cadence.  A spec option (not a constant) so operators can trade
        # shutdown latency against wakeup rate.
        self.recv_timeout = recv_timeout
        self.unmatched_replies = 0
        self._warnings: list[str] = []
        self._epoch = 0
        self._stats = EngineStats()
        self._sock: socket.socket | None = None
        self._receiver: threading.Thread | None = None
        self._running = False
        self._lock = threading.Lock()
        # probe_id -> [(source:int, icmp_type, code), ...] in arrival order
        self._matched: dict[int, list[tuple[int, ICMPv6Type, int]]] = {}

    @classmethod
    def from_spec(
        cls,
        spec: BackendSpec,
        *,
        world: "World | None" = None,
        engine=None,
        epoch: int = 0,
        defer_rate_limit: bool = False,
    ) -> "RawSocketBackend":
        options = spec.arguments()
        backend = cls(
            key=options.get("key", DEFAULT_PROBE_KEY),
            authorized=bool(options.get("authorized", False)),
            pps=float(options.get("pps", 1_000.0)),
            linger=float(options.get("linger", 1.0)),
            recv_timeout=float(options.get("recv_timeout", 0.2)),
        )
        backend._epoch = epoch
        return backend

    def spec(self) -> BackendSpec:
        return make_backend_spec(
            self.name,
            key=self.key,
            authorized=True,  # an instance only exists when authorized
            pps=self.pps,
            linger=self.linger,
            recv_timeout=self.recv_timeout,
        )

    # ---------------- lifecycle ---------------- #

    def open(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.socket(
                socket.AF_INET6, socket.SOCK_RAW, socket.IPPROTO_ICMPV6
            )
        except PermissionError as error:
            raise BackendPrivilegeError(
                "opening a raw ICMPv6 socket requires CAP_NET_RAW "
                "(run privileged, or grant the capability)"
            ) from error
        except OSError as error:
            raise BackendPrivilegeError(
                f"raw ICMPv6 socket unavailable: {error}"
            ) from error
        sock.settimeout(self.recv_timeout)
        self._sock = sock
        self._running = True
        self._receiver = threading.Thread(
            target=self._receive_loop, name="raw-backend-recv", daemon=True
        )
        self._receiver.start()

    def close(self) -> None:
        self._running = False
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        if self._receiver is not None:
            # The receiver wakes at most every recv_timeout to check
            # _running, so two cycles (plus reply-drain slack) is an
            # honest join budget; derived from the spec options instead
            # of a hardcoded constant.
            join_timeout = self.linger + 2.0 * self.recv_timeout
            self._receiver.join(timeout=join_timeout)
            if self._receiver.is_alive():
                # Don't leak a thread silently: queue an operational
                # warning for the scanner/CLI to surface (ops channel).
                self._warnings.append(
                    "receiver thread failed to join within "
                    f"{join_timeout:.1f}s; daemon thread leaked"
                )
            self._receiver = None

    def pop_warnings(self) -> list[str]:
        warnings, self._warnings = self._warnings, []
        return warnings

    # ---------------- epoch + observability ---------------- #

    @property
    def epoch(self) -> int:
        return self._epoch

    def new_epoch(self, epoch: int) -> None:
        self._epoch = epoch
        self._stats = EngineStats()
        with self._lock:
            self._matched.clear()

    @property
    def stats(self) -> EngineStats:
        return self._stats

    # ---------------- receive path ---------------- #

    def _receive_loop(self) -> None:
        """Match inbound ICMPv6 against outstanding probes, by probe id.

        The kernel strips the IPv6 header on raw ICMPv6 receive, so the
        checksum cannot be re-verified here (it needs the pseudo-header);
        the authenticated payload MAC is the integrity check that
        matters.  Our own outbound Echo Requests loop back on ``::1``
        probes and are skipped silently — they are not "unmatched
        traffic", they are ours.
        """
        while self._running:
            sock = self._sock
            if sock is None:
                return
            try:
                data, address = sock.recvfrom(65535)
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed underneath us: shutdown
            try:
                message = ICMPv6Message.decode(
                    data, src=0, dst=0, verify=False
                )
            except PacketError:
                with self._lock:
                    self.unmatched_replies += 1
                continue
            if message.type is ICMPv6Type.ECHO_REQUEST:
                continue
            # Link-local sources arrive as "fe80::1%ifname"; the scope
            # suffix is not part of the address proper.
            source = _address_int(address[0].split("%", 1)[0])
            extraction = extract_probe(message, self.key)
            with self._lock:
                if extraction is None:
                    self.unmatched_replies += 1
                    continue
                payload, _original_target = extraction
                pending = self._matched.get(payload.probe_id)
                if pending is None:
                    self.unmatched_replies += 1
                    continue
                pending.append((source, message.type, message.code))

    # ---------------- send path ---------------- #

    def send_batch(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
    ) -> "list[ProbeResult]":
        self.open()
        sock = self._sock
        assert sock is not None
        if probe_ids is None:
            probe_ids = [(self._epoch << 32) | index for index in range(len(targets))]
        sock.setsockopt(
            socket.IPPROTO_IPV6,
            socket.IPV6_UNICAST_HOPS,
            struct.pack("i", hop_limit),
        )
        # The scanner's virtual probe times already encode its pps; the
        # wall-clock realisation re-derives the rate through the shared
        # paced_pps policy so the backend's own ceiling caps it.
        duration = max(0.0, float(times[-1]) - float(times[0])) if times else 0.0
        rate = paced_pps(len(targets), duration, self.pps)
        interval = 1.0 / rate
        with self._lock:
            for probe_id in probe_ids:
                self._matched[probe_id] = []
        started = wallclock.monotonic()
        for index, (target, probe_id) in enumerate(zip(targets, probe_ids)):
            due = started + index * interval
            delay = due - wallclock.monotonic()
            if delay > 0:
                wallclock.sleep(delay)
            payload = encode_payload(target, probe_id, self.key)
            message = echo_request(
                probe_id & 0xFFFF, (probe_id >> 16) & 0xFFFF, payload
            )
            # Checksum uses a zero source; the kernel recomputes it for
            # IPPROTO_ICMPV6 raw sockets once the real source is known.
            wire = message.encode(0, target)
            sock.sendto(wire, (_address_text(target), 0, 0, 0))
            self._stats.probes += 1
        if self.linger:
            wallclock.sleep(self.linger)
        return self._collect(targets, times, probe_ids)

    def _collect(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        probe_ids: Sequence[int],
    ) -> "list[ProbeResult]":
        outcomes: list[ProbeResult] = []
        with self._lock:
            for target, time, probe_id in zip(targets, times, probe_ids):
                arrived = self._matched.pop(probe_id, [])
                # Aggregate duplicates (loop floods, dup delivery) into
                # per-(source, type, code) reply counts, like the engine.
                counted: dict[tuple[int, ICMPv6Type, int], int] = {}
                for entry in arrived:
                    counted[entry] = counted.get(entry, 0) + 1
                replies = tuple(
                    Reply(source=source, icmp_type=icmp_type, code=code, count=count)
                    for (source, icmp_type, code), count in counted.items()
                )
                for reply in replies:
                    if reply.is_echo:
                        self._stats.echo_replies += reply.count
                    else:
                        self._stats.error_replies += reply.count
                if not replies:
                    self._stats.lost += 1
                outcomes.append(
                    ProbeResult(
                        target=target,
                        time=time,
                        epoch=self._epoch,
                        replies=replies,
                        lost=not replies,
                    )
                )
        return outcomes


register_backend(RawSocketBackend.name, RawSocketBackend)
