"""``sim``: the simulation engine behind the backend seam.

A zero-cost adapter — every method is a direct delegation to the wrapped
:class:`~repro.netsim.engine.SimulationEngine`, including the columnar
``probe_columns`` hot path, so the scanner's output through this backend
is byte-identical to driving the engine directly (the determinism suite
and the benchmark seam gate both pin this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ...netsim.engine import SimulationEngine
from .base import BackendSpec, ProbeBackend, make_backend_spec, register_backend

if TYPE_CHECKING:
    from ...netsim.engine import EngineStats, ProbeColumns, ProbeResult
    from ...topology.entities import World


class SimBackend(ProbeBackend):
    """Probes a :class:`SimulationEngine`; the default backend."""

    name = "sim"
    supports_columns = True
    deterministic = True
    requires_privilege = False

    def __init__(self, engine: SimulationEngine) -> None:
        self.engine = engine

    @classmethod
    def from_spec(
        cls,
        spec: BackendSpec,
        *,
        world: "World | None" = None,
        engine: SimulationEngine | None = None,
        epoch: int = 0,
        defer_rate_limit: bool = False,
    ) -> "SimBackend":
        if engine is None:
            if world is None:
                raise ValueError(
                    "sim backend needs a world (or a pre-built engine)"
                )
            engine = SimulationEngine(
                world, epoch=epoch, defer_rate_limit=defer_rate_limit
            )
        return cls(engine)

    def spec(self) -> BackendSpec:
        return make_backend_spec(self.name)

    # ---------------- epoch + observability ---------------- #

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    def new_epoch(self, epoch: int) -> None:
        self.engine.new_epoch(epoch)

    @property
    def stats(self) -> "EngineStats":
        return self.engine.stats

    @property
    def pending_checks(self) -> list[tuple[float, int]]:
        return self.engine.pending_checks

    @property
    def needs_probe_ids(self) -> bool:
        # probe_ids exist only to decorrelate the loss draw; with loss
        # off the engine never reads them, so the scanner skips building
        # the column (the pre-seam behaviour, bit for bit).
        return self.engine.world.packet_loss > 0.0

    @property
    def telemetry(self):
        return self.engine.telemetry

    @telemetry.setter
    def telemetry(self, collector) -> None:
        self.engine.telemetry = collector

    # ---------------- probing ---------------- #

    def probe(
        self, target: int, time: float, *, hop_limit: int = 64, probe_id: int = 0
    ) -> "ProbeResult":
        return self.engine.probe(
            target, time, hop_limit=hop_limit, probe_id=probe_id
        )

    def send_batch(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
    ) -> "list[ProbeResult]":
        return self.engine.probe_batch(
            list(targets),
            list(times),
            hop_limit=hop_limit,
            probe_ids=list(probe_ids) if probe_ids is not None else None,
        )

    def probe_columns(
        self,
        targets: Sequence[int],
        times: Sequence[float],
        *,
        hop_limit: int = 64,
        probe_ids: Sequence[int] | None = None,
        out: "ProbeColumns | None" = None,
    ) -> "ProbeColumns":
        return self.engine.probe_columns(
            targets, times, hop_limit=hop_limit, probe_ids=probe_ids, out=out
        )


register_backend(SimBackend.name, SimBackend)
