"""The scan checkpoint journal: killable, resumable, provably identical.

Real SRA campaigns run for hours across re-scan epochs; ZMap-lineage
scanners treat interruption as routine and must survive restarts
*without re-probing* (re-probing skews per-router rate-limit state and
wastes probe budget).  This module gives
:class:`~repro.scanner.sharded.ShardedScanRunner` a durable journal:

* after every completed shard the runner saves a :class:`ScanCheckpoint`
  — the scan's identity (name, epoch, shard count, config key, a target
  fingerprint, and the rebuildable
  :class:`~repro.scanner.stream.StreamSpec` when the target stream has
  one), every finished :class:`~repro.scanner.sharded.ShardOutcome`
  (records *and* the deferred rate-limit checks the merge replay needs),
  the streaming sink's byte offset, and a snapshot of the shared
  :class:`~repro.telemetry.scan.ScanTelemetry` facade;
* a resume loads the journal, restores the telemetry snapshot, and
  re-runs **only the index windows of the missing shards** (each window
  is reconstructed arithmetically by
  :func:`repro.scanner.stream.shard_positions` over the cyclic
  permutation — no per-probe state is needed to know what is left);
* the merge then replays all recorded rate-limit checks in global
  virtual-time order exactly as an uninterrupted run would, so the
  resumed result — records, counters, Prometheus export, event stream —
  is **byte-identical** to a never-interrupted run.

Durability: checkpoints are written via the shared temp + rename + fsync
helper (:mod:`repro.atomicio`), so a crash mid-save leaves the previous
complete journal, never a torn one.  Integrity: the on-disk container is
``MAGIC | schema version | payload length | CRC-32 | payload``; any
truncation, bit-flip, or schema skew is detected at load time and
reported as a typed :class:`CheckpointError` (the CLIs map these to exit
code 4 with a one-line message, no traceback).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from ..atomicio import atomic_write_bytes

if TYPE_CHECKING:  # runtime import cycle: sharded imports this module
    from ..telemetry.scan import ScanTelemetry
    from .sharded import ShardOutcome
    from .stream import StreamSpec
    from .zmapv6 import ScanConfig

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointSchemaError",
    "ScanCheckpoint",
    "TelemetrySnapshot",
    "config_key",
    "load_checkpoint",
    "restore_telemetry",
    "save_checkpoint",
    "snapshot_telemetry",
    "target_fingerprint",
]

CHECKPOINT_SCHEMA_VERSION = 1

# 8-byte magic, then schema (u32), payload length (u64), CRC-32 (u32),
# big-endian, then the pickled payload.
_MAGIC = b"SRACKPT\n"
_HEADER = struct.Struct(">IQI")


class CheckpointError(Exception):
    """Base class for everything that can go wrong with a journal."""


class CheckpointCorruptError(CheckpointError):
    """The file is truncated, bit-flipped, or not a checkpoint at all."""


class CheckpointSchemaError(CheckpointError):
    """The file is intact but written by an incompatible schema version."""


class CheckpointMismatchError(CheckpointError):
    """The journal belongs to a different scan than the one resuming."""


@dataclass(slots=True)
class TelemetrySnapshot:
    """A :class:`~repro.telemetry.scan.ScanTelemetry` facade, frozen.

    Captures both channels — the deterministic scan stream (events, seq,
    registry) and the operational stream (checkpoint/retry/resume events
    and counters) — so a resumed process picks up the event stream at the
    exact sequence number the crashed process reached.
    """

    events: list = field(default_factory=list)
    seq: int = 0
    registry: object = None
    ops_events: list = field(default_factory=list)
    ops_seq: int = 0
    ops_registry: object = None


def snapshot_telemetry(telemetry: "ScanTelemetry") -> TelemetrySnapshot:
    """Freeze a facade's state (by reference; pickling at save time makes
    the copy, so snapshot + save must happen back to back)."""
    return TelemetrySnapshot(
        events=telemetry.events,
        seq=telemetry._seq,
        registry=telemetry.registry,
        ops_events=telemetry.ops_events,
        ops_seq=telemetry._ops_seq,
        ops_registry=telemetry.ops_registry,
    )


def restore_telemetry(
    telemetry: "ScanTelemetry", snapshot: TelemetrySnapshot
) -> None:
    """Replace a facade's state with a loaded snapshot.

    Snapshots are cumulative prefixes of one deterministic stream, so a
    multi-scan campaign that resumes scan *k* restores the state the
    original process had reached at that point — including every event
    of scans 1..k-1 — and re-emission continues from there byte for
    byte.
    """
    telemetry.events = list(snapshot.events)
    telemetry._seq = snapshot.seq
    if snapshot.registry is not None:
        telemetry.registry = snapshot.registry
    telemetry.ops_events = list(snapshot.ops_events)
    telemetry._ops_seq = snapshot.ops_seq
    if snapshot.ops_registry is not None:
        telemetry.ops_registry = snapshot.ops_registry


def config_key(config: "ScanConfig") -> tuple:
    """The scan-config fields a resume must agree on.

    Probe times, permutation order, and stochastic draws are functions of
    exactly these; ``batch_size`` and telemetry cadence are deliberately
    excluded (they are pinned bit-invariant by the determinism suite).
    The backend rides along as its picklable ``BackendSpec`` — resuming a
    ``wire-sim`` journal with a ``sim`` config (or a different probe key)
    is a config mismatch like any other.  So does the resilience policy:
    quarantine semantics decide which probes a completed shard gave up
    on, so resuming across a policy change (or from a policy-less
    journal into a policy-ful run) must fail loudly, not merge runs with
    different failure semantics.
    """
    return (
        config.pps,
        config.hop_limit,
        config.seed,
        config.permute,
        config.backend_spec(),
        config.retry_policy,
    )


def target_fingerprint(targets: Sequence[int]) -> int:
    """A cheap, O(1) identity check for a target sequence.

    Hashes the length plus three sampled elements — enough to catch the
    realistic failure mode (resuming against a different input set or
    budget) without walking a constant-memory stream end to end.
    """
    size = len(targets)
    sample = (size,)
    if size:
        sample += (
            int(targets[0]),
            int(targets[size // 2]),
            int(targets[size - 1]),
        )
    digest = zlib.crc32(repr(sample).encode("ascii"))
    return digest


@dataclass(slots=True)
class ScanCheckpoint:
    """Everything needed to resume a sharded scan after a crash."""

    name: str
    epoch: int
    shards: int
    scan_key: tuple
    target_count: int
    fingerprint: int
    spec: "StreamSpec | None" = None
    # Completed shards, by shard index.  Records are pristine (pre-merge:
    # the rate-limit replay prunes at merge time, never here).
    outcomes: "dict[int, ShardOutcome]" = field(default_factory=dict)
    # Byte offset the streaming record sink had flushed when this
    # checkpoint was written (None when the scan buffers records).
    sink_offset: int | None = None
    telemetry: TelemetrySnapshot | None = None

    @property
    def completed_shards(self) -> list[int]:
        return sorted(self.outcomes)

    @property
    def remaining_shards(self) -> list[int]:
        return [s for s in range(self.shards) if s not in self.outcomes]

    def validate_resume(
        self,
        *,
        name: str,
        epoch: int,
        shards: int,
        scan_key: tuple,
        target_count: int,
        fingerprint: int,
    ) -> None:
        """Raise :class:`CheckpointMismatchError` unless this journal
        belongs to exactly the scan that is resuming."""
        expected = {
            "scan name": (self.name, name),
            "epoch": (self.epoch, epoch),
            "shard count": (self.shards, shards),
            "scan config": (self.scan_key, scan_key),
            "target count": (self.target_count, target_count),
            "target fingerprint": (self.fingerprint, fingerprint),
        }
        for label, (stored, current) in expected.items():
            if stored != current:
                raise CheckpointMismatchError(
                    f"checkpoint {label} mismatch: journal has {stored!r}, "
                    f"resuming scan has {current!r} (delete the checkpoint "
                    f"to start over)"
                )
        for shard in self.outcomes:
            if not 0 <= shard < self.shards:
                raise CheckpointCorruptError(
                    f"checkpoint contains shard {shard} outside "
                    f"[0, {self.shards})"
                )


def save_checkpoint(checkpoint: ScanCheckpoint, path: str | Path) -> None:
    """Serialise and write the journal atomically.

    Layout: ``MAGIC | schema | payload length | CRC-32(payload) |
    payload``.  The write itself is temp + rename + fsync, so a crash
    mid-save leaves the previous journal intact.
    """
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    header = _MAGIC + _HEADER.pack(
        CHECKPOINT_SCHEMA_VERSION, len(payload), zlib.crc32(payload)
    )
    atomic_write_bytes(path, header + payload)


def load_checkpoint(path: str | Path) -> ScanCheckpoint:
    """Load and integrity-check a journal.

    Raises :class:`CheckpointCorruptError` on truncation / bad magic /
    CRC mismatch / undecodable payload and
    :class:`CheckpointSchemaError` on a schema version this code does
    not speak.  Never returns a partially-valid checkpoint.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from None
    prefix_len = len(_MAGIC) + _HEADER.size
    if len(raw) < prefix_len or not raw.startswith(_MAGIC):
        raise CheckpointCorruptError(
            f"{path} is not a scan checkpoint (bad or truncated header)"
        )
    schema, length, crc = _HEADER.unpack_from(raw, len(_MAGIC))
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointSchemaError(
            f"{path} uses checkpoint schema v{schema}; this build speaks "
            f"v{CHECKPOINT_SCHEMA_VERSION}"
        )
    payload = raw[prefix_len:]
    if len(payload) != length:
        raise CheckpointCorruptError(
            f"{path} is truncated: header promises {length} payload bytes, "
            f"found {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointCorruptError(
            f"{path} failed its CRC-32 integrity check (corrupt journal)"
        )
    try:
        checkpoint = pickle.loads(payload)
    except Exception as error:
        raise CheckpointCorruptError(
            f"{path} payload does not decode: {error}"
        ) from None
    if not isinstance(checkpoint, ScanCheckpoint):
        raise CheckpointCorruptError(
            f"{path} decodes to {type(checkpoint).__name__}, "
            "not a ScanCheckpoint"
        )
    return checkpoint
