"""Shared probe-rate pacing policy.

Real scans sweep their target space slowly (the paper: 28.2 B targets in
~1.5 days); pacing each scan over a fixed *virtual* duration keeps the
per-router probe rate — and therefore RFC 4443 bucket pressure — at
realistic levels regardless of the scaled-down target count.  Both the
survey and the probing-method campaigns use this one policy.
"""

from __future__ import annotations

MIN_PPS = 100.0


def paced_pps(target_count: int, duration: float, ceiling: float) -> float:
    """Probe rate that sweeps ``target_count`` targets over ``duration``
    virtual seconds, never below :data:`MIN_PPS` and capped at the
    scanner's line rate ``ceiling``.

    A non-positive ``duration`` or an empty target list disables pacing
    and returns the ceiling unchanged.  A non-positive ``ceiling`` is a
    configuration error — a scan cannot run at zero or negative rate —
    and raises :class:`ValueError` instead of propagating nonsense pps
    into the virtual clock.
    """
    if ceiling <= 0:
        raise ValueError(f"pps ceiling must be positive, got {ceiling}")
    if duration <= 0 or target_count <= 0:
        return ceiling
    return min(ceiling, max(MIN_PPS, target_count / duration))
