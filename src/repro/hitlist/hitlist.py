"""Hitlist containers: lists of (purportedly) active IPv6 host addresses.

Models the TUM IPv6 Hitlist service role in the paper: a community list of
active end hosts, compiled from many sources, that the survey converts to
/64 SRA targets.  Hitlists go stale — addresses observed "at some point in
the past" may be gone — which is why the paper's response rates matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..addr.ipv6 import AddressError, format_address, parse_address
from ..addr.partition import STAGE3_LENGTH, hitlist_targets


@dataclass(slots=True)
class Hitlist:
    """An ordered, deduplicated list of host addresses with provenance."""

    name: str = "hitlist"
    _addresses: list[int] = field(default_factory=list)
    _seen: set[int] = field(default_factory=set)

    def add(self, address: int) -> bool:
        """Add an address; False if it was already present."""
        if address in self._seen:
            return False
        self._seen.add(address)
        self._addresses.append(address)
        return True

    def extend(self, addresses: Iterable[int]) -> int:
        """Add many addresses, returning how many were new."""
        return sum(1 for address in addresses if self.add(address))

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self) -> Iterator[int]:
        return iter(self._addresses)

    def __contains__(self, address: int) -> bool:
        return address in self._seen

    def addresses(self) -> list[int]:
        return list(self._addresses)

    def unique_slash64s(self) -> list[int]:
        """Distinct /64 SRA targets derived from the host addresses.

        This is the construction that turned the 2.5 B-address TUM hitlist
        into 700 M /64 targets in the paper.
        """
        return list(hitlist_targets(self._addresses, subnet_length=STAGE3_LENGTH))

    @classmethod
    def load(cls, path: str | Path, *, name: str | None = None) -> "Hitlist":
        """Load one address per line; blanks and ``#`` comments ignored."""
        hitlist = cls(name=name or Path(path).stem)
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                try:
                    hitlist.add(parse_address(text))
                except AddressError as exc:
                    raise AddressError(f"{path}:{line_number}: {exc}") from exc
        return hitlist

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# hitlist: {self.name} ({len(self)} addresses)\n")
            for address in self._addresses:
                handle.write(format_address(address) + "\n")
