"""The aliased-prefix list: networks that answer on *every* address.

Fully-responsive ("aliased") prefixes would inflate any active-address
count; the TUM hitlist service publishes a list of detected aliased
prefixes, and the paper's alias filter checks reply sources against it
(§3.1 "IPv6 Alias Resolution").
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from ..addr.ipv6 import IPv6Prefix
from ..bgp.trie import PrefixTrie


class AliasedPrefixList:
    """A prefix set with containment queries, mirroring the TUM alias list."""

    def __init__(self, prefixes: Iterable[IPv6Prefix] = ()) -> None:
        self._trie: PrefixTrie[bool] = PrefixTrie()
        self._prefixes: set[IPv6Prefix] = set()
        for prefix in prefixes:
            self.add(prefix)

    def add(self, prefix: IPv6Prefix) -> None:
        if prefix not in self._prefixes:
            self._prefixes.add(prefix)
            self._trie.insert(prefix, True)

    def __len__(self) -> int:
        return len(self._prefixes)

    def __iter__(self) -> Iterator[IPv6Prefix]:
        return iter(sorted(self._prefixes))

    def contains_address(self, address: int) -> bool:
        """True if ``address`` falls inside any known aliased prefix."""
        return self._trie.longest_match(address) is not None

    def contains_prefix(self, prefix: IPv6Prefix) -> bool:
        """True if ``prefix`` is covered by any known aliased prefix."""
        return self._trie.has_cover(prefix)

    @classmethod
    def load(cls, path: str | Path) -> "AliasedPrefixList":
        """Load one prefix per line; blanks and ``#`` comments ignored."""
        prefixes = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                text = line.strip()
                if text and not text.startswith("#"):
                    prefixes.append(IPv6Prefix.parse(text))
        return cls(prefixes)

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# aliased prefixes ({len(self)})\n")
            for prefix in self:
                handle.write(str(prefix) + "\n")
