"""Hitlist substrate: active-host lists and the aliased-prefix list."""

from .aliases import AliasedPrefixList
from .hitlist import Hitlist

__all__ = ["AliasedPrefixList", "Hitlist"]
