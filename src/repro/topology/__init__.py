"""Synthetic Internet topology: entities, generator, vendor profiles."""

from .config import DEFAULT_COUNTRIES, WorldConfig, tiny_config
from .entities import (
    AliasRegion,
    ASInfo,
    ASType,
    EntryKind,
    InfraSubnet,
    LoopRegion,
    ResolutionEntry,
    Router,
    Subnet,
    TransitHop,
    VantagePoint,
    World,
)
from .export import ArtifactBundle, export_artifacts, load_artifacts
from .generator import WorldBuilder, build_world
from .mitigation import (
    DisclosureReport,
    apply_null_route,
    fix_all_loops_for_asn,
    render_null_route_config,
    run_disclosure_campaign,
)
from .profiles import (
    DEFAULT_VENDORS,
    SRABehavior,
    VendorProfile,
    vendor_by_name,
)

__all__ = [
    "ASInfo",
    "ArtifactBundle",
    "ASType",
    "AliasRegion",
    "DEFAULT_COUNTRIES",
    "DEFAULT_VENDORS",
    "DisclosureReport",
    "EntryKind",
    "InfraSubnet",
    "LoopRegion",
    "ResolutionEntry",
    "Router",
    "SRABehavior",
    "Subnet",
    "TransitHop",
    "VantagePoint",
    "VendorProfile",
    "World",
    "WorldBuilder",
    "WorldConfig",
    "apply_null_route",
    "build_world",
    "export_artifacts",
    "load_artifacts",
    "fix_all_loops_for_asn",
    "render_null_route_config",
    "run_disclosure_campaign",
    "tiny_config",
    "vendor_by_name",
]
