"""Operator-side loop mitigation: the Appendix C null-route fix.

A routing loop exists because the customer router forwards packets for its
own unused aggregated space back to the provider's default route.  The fix
is a discard (null) route covering the unused space on the customer router;
here that simply removes the loop region from the world's resolution index,
so subsequent probes get a clean "no route" error instead of looping.

:func:`run_disclosure_campaign` models the paper's responsible-disclosure
outcome: operators of a subset of looping ASes apply the fix, reducing the
global count of looping /48s (§6: 263 ASes fixed 7.7 M of 141 M loops by
May 2025).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..addr.ipv6 import format_address
from .entities import LoopRegion, World


def render_null_route_config(region: LoopRegion, vendor: str = "cisco") -> str:
    """The Appendix C configuration snippet that fixes a loop region.

    ``vendor`` selects the syntax family: ``cisco`` (IOS null route) or
    ``juniper`` (Junos aggregate route).  These are the example fixes the
    paper shared with operators during responsible disclosure.
    """
    prefix_text = f"{format_address(region.prefix.network)}/{region.prefix.length}"
    if vendor == "cisco":
        return f"ipv6 route {prefix_text} Null0"
    if vendor == "juniper":
        return f"set routing-options rib inet6.0 aggregate route {prefix_text}"
    raise ValueError(f"unknown vendor syntax {vendor!r} (cisco|juniper)")


@dataclass(slots=True)
class DisclosureReport:
    """Outcome of a disclosure campaign."""

    contacted_asns: int = 0
    fixed_asns: list[int] = field(default_factory=list)
    removed_regions: list[LoopRegion] = field(default_factory=list)

    @property
    def loops_fixed(self) -> int:
        return sum(region.slash48_count() for region in self.removed_regions)


def apply_null_route(world: World, region: LoopRegion) -> None:
    """Install the customer-side discard route for one loop region."""
    world.remove_loop(region)


def fix_all_loops_for_asn(world: World, asn: int) -> list[LoopRegion]:
    """An operator null-routes every looping region in their AS."""
    regions = [region for region in world.loop_regions if region.asn == asn]
    for region in regions:
        apply_null_route(world, region)
    return regions


def run_disclosure_campaign(
    world: World,
    *,
    response_rate: float = 0.05,
    rng: random.Random | None = None,
) -> DisclosureReport:
    """Contact every operator of a looping AS; a fraction applies the fix.

    Returns a report with the number of removed looping /48s, the analogue
    of the paper's "decreased in 263 ASes by a total of 7.7 M loops".
    """
    if not 0 <= response_rate <= 1:
        raise ValueError("response_rate must be in [0, 1]")
    rng = rng or random.Random(0xD15C)
    report = DisclosureReport()
    looping_asns = sorted({region.asn for region in world.loop_regions})
    report.contacted_asns = len(looping_asns)
    for asn in looping_asns:
        if rng.random() < response_rate:
            removed = fix_all_loops_for_asn(world, asn)
            if removed:
                report.fixed_asns.append(asn)
                report.removed_regions.extend(removed)
    return report
