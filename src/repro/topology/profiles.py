"""Router vendor behaviour profiles.

The paper leans on three behavioural facts about deployed routers:

* **SRA semantics differ by implementation** [Swer 2023]: some reply to the
  Subnet-Router anycast address with an Echo Reply from their own full
  source address, some silently drop, some answer with an ICMPv6 error.
* **ICMPv6 error messages are rate limited** (RFC 4443 §2.4(f)) with
  vendor-specific token-bucket parameters, while Echo replies are not.
* A **firmware bug in common vendors** replicates packets caught in
  routing loops, amplifying a single Echo request into up to >250 000
  Time Exceeded messages.

Profiles bundle those knobs; the topology generator assigns one per router.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SRABehavior(enum.Enum):
    """What a router does with a packet addressed to one of its SRAs."""

    REPLY = "reply"  # RFC-conformant: Echo Reply from its own address
    DROP = "drop"  # silently ignores SRA-addressed packets
    ERROR = "error"  # treats it as an unassigned address -> error message


@dataclass(frozen=True, slots=True)
class VendorProfile:
    """Behavioural parameters of one router implementation.

    ``error_rate`` / ``error_burst`` configure the RFC 4443 token bucket
    for ICMPv6 *error* origination (messages per virtual second / bucket
    depth).  ``replicates_in_loops`` marks the amplification firmware bug;
    ``replication_factor`` is the per-loop-cycle packet multiplier (> 1.0
    only for buggy firmware — the amplification factor observed for a probe
    entering the loop with ``h`` hops left is ~ factor**(h/2)).
    """

    name: str
    sra_behavior: SRABehavior
    error_rate: float = 100.0
    error_burst: int = 50
    replicates_in_loops: bool = False
    replication_factor: float = 1.0
    answers_direct_ping_probability: float = 0.25

    def __post_init__(self) -> None:
        if self.error_rate <= 0:
            raise ValueError("error_rate must be positive")
        if self.error_burst <= 0:
            raise ValueError("error_burst must be positive")
        if self.replicates_in_loops and self.replication_factor <= 1.0:
            raise ValueError("buggy firmware needs replication_factor > 1")
        if not self.replicates_in_loops and self.replication_factor != 1.0:
            raise ValueError("replication_factor requires replicates_in_loops")


# The default vendor catalogue.  Names are deliberately fictional (the paper
# withheld vendor identities during responsible disclosure); market shares
# live in the topology generator's config.
# Error-rate defaults follow observed vendor behaviour: Cisco-style
# "one error per 100 ms" (10/s), Juniper-style 50/s, with small buckets.
CONFORMANT = VendorProfile(
    name="conformant",
    sra_behavior=SRABehavior.REPLY,
    error_rate=10.0,
    error_burst=10,
    answers_direct_ping_probability=0.30,
)

CONFORMANT_FAST = VendorProfile(
    name="conformant-fast",
    sra_behavior=SRABehavior.REPLY,
    error_rate=50.0,
    error_burst=50,
    answers_direct_ping_probability=0.35,
)

SILENT = VendorProfile(
    name="silent",
    sra_behavior=SRABehavior.DROP,
    error_rate=10.0,
    error_burst=10,
    answers_direct_ping_probability=0.15,
)

ERRORING = VendorProfile(
    name="erroring",
    sra_behavior=SRABehavior.ERROR,
    error_rate=20.0,
    error_burst=20,
    answers_direct_ping_probability=0.20,
)

BUGGY_MILD = VendorProfile(
    name="buggy-mild",
    sra_behavior=SRABehavior.REPLY,
    error_rate=10.0,
    error_burst=10,
    replicates_in_loops=True,
    replication_factor=1.05,
    answers_direct_ping_probability=0.25,
)

BUGGY_SEVERE = VendorProfile(
    name="buggy-severe",
    sra_behavior=SRABehavior.REPLY,
    error_rate=10.0,
    error_burst=10,
    replicates_in_loops=True,
    replication_factor=1.5,
    answers_direct_ping_probability=0.25,
)

DEFAULT_VENDORS: tuple[VendorProfile, ...] = (
    CONFORMANT,
    CONFORMANT_FAST,
    SILENT,
    ERRORING,
    BUGGY_MILD,
    BUGGY_SEVERE,
)


def vendor_by_name(name: str) -> VendorProfile:
    """Look up a catalogue vendor; raises KeyError for unknown names."""
    for vendor in DEFAULT_VENDORS:
        if vendor.name == name:
            return vendor
    raise KeyError(f"unknown vendor profile: {name!r}")
