"""Configuration for the synthetic Internet generator.

All population priors live here, in one place, so the scale-down from the
real Internet is explicit and auditable:

* country weights reproduce the paper's geographic skew (Fig. 3: India and
  China dominate discovered router addresses; Table 4: Brazil dominates
  routing loops while Germany/USA host the mega-amplifiers),
* vendor-mix priors drive SRA reply semantics and the amplification bug,
* structural knobs (AS count, subnets per AS, hosts per subnet) set the
  absolute scale, roughly 1/1000 of the measured Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# (ISO3 code, AS-count weight, size multiplier). The size multiplier skews
# how many active subnets ASes in that country operate, reproducing the
# router-address bias towards Asian ISPs the paper reports (IND 27%, CHN 20%).
DEFAULT_COUNTRIES: tuple[tuple[str, float, float], ...] = (
    ("IND", 0.085, 3.6),
    ("CHN", 0.075, 3.0),
    ("USA", 0.095, 1.0),
    ("BRA", 0.065, 1.0),
    ("DEU", 0.050, 0.9),
    ("GBR", 0.032, 0.8),
    ("FRA", 0.030, 0.8),
    ("JPN", 0.030, 1.0),
    ("KOR", 0.022, 1.0),
    ("RUS", 0.030, 0.9),
    ("ITA", 0.022, 0.7),
    ("ESP", 0.020, 0.7),
    ("CAN", 0.020, 0.7),
    ("AUS", 0.018, 0.7),
    ("IDN", 0.022, 1.4),
    ("VNM", 0.018, 1.3),
    ("THA", 0.015, 1.1),
    ("TUR", 0.015, 0.9),
    ("POL", 0.015, 0.7),
    ("NLD", 0.018, 0.8),
    ("CZE", 0.012, 0.8),
    ("SWE", 0.012, 0.6),
    ("CHE", 0.010, 0.6),
    ("AUT", 0.010, 0.6),
    ("BEL", 0.008, 0.6),
    ("NOR", 0.007, 0.5),
    ("FIN", 0.007, 0.5),
    ("DNK", 0.007, 0.5),
    ("PRT", 0.007, 0.5),
    ("GRC", 0.006, 0.5),
    ("ROU", 0.008, 0.6),
    ("HUN", 0.006, 0.5),
    ("UKR", 0.010, 0.7),
    ("MEX", 0.012, 0.8),
    ("ARG", 0.010, 0.8),
    ("CHL", 0.007, 0.6),
    ("COL", 0.007, 0.6),
    ("PER", 0.005, 0.5),
    ("ZAF", 0.008, 0.6),
    ("EGY", 0.006, 0.7),
    ("NGA", 0.005, 0.6),
    ("KEN", 0.004, 0.5),
    ("MAR", 0.004, 0.5),
    ("SAU", 0.005, 0.6),
    ("ARE", 0.005, 0.6),
    ("ISR", 0.006, 0.5),
    ("IRN", 0.007, 0.8),
    ("PAK", 0.007, 0.9),
    ("BGD", 0.006, 1.0),
    ("LKA", 0.003, 0.6),
    ("MYS", 0.007, 0.8),
    ("SGP", 0.006, 0.6),
    ("PHL", 0.007, 0.9),
    ("TWN", 0.008, 0.8),
    ("HKG", 0.006, 0.6),
    ("NZL", 0.004, 0.5),
    ("IRL", 0.004, 0.5),
    ("SVK", 0.004, 0.5),
    ("BGR", 0.004, 0.5),
    ("HRV", 0.003, 0.5),
    ("SRB", 0.003, 0.5),
    ("LTU", 0.002, 0.4),
    ("LVA", 0.002, 0.4),
    ("EST", 0.002, 0.4),
)

# Share of the *looping /48 mass* per country (Table 4a: BRA 26 %, DEU 9.4 %,
# CZE 7.4 %, USA 5.4 %, NLD 5.1 %, long tail elsewhere) and the relative
# number of looping routers (BRA has ~8x the looping routers of DEU for only
# ~3x the loops, i.e. small regions; NLD concentrates loops on few routers).
DEFAULT_LOOP_COUNTRY_PRIORS: dict[str, tuple[float, float]] = {
    # country: (loop-mass weight, looping-router weight)
    "BRA": (0.26, 0.52),
    "DEU": (0.094, 0.055),
    "CZE": (0.074, 0.040),
    "USA": (0.054, 0.15),
    "NLD": (0.051, 0.018),
    "CHN": (0.040, 0.12),
}
LOOP_OTHER_MASS = 0.427  # remaining mass spread over all other countries
LOOP_OTHER_ROUTERS = 0.117

# Vendor market shares per region bucket.  "Severe" replication bugs are
# concentrated where the paper found the mega-amplifiers (DEU/USA); "mild"
# replication dominates in BRA/CHN (max amplification 51x / 52x).
DEFAULT_VENDOR_MIX: dict[str, tuple[tuple[str, float], ...]] = {
    "default": (
        ("conformant", 0.46),
        ("conformant-fast", 0.22),
        ("silent", 0.14),
        ("erroring", 0.12),
        ("buggy-mild", 0.06),
    ),
    "BRA": (
        ("conformant", 0.30),
        ("conformant-fast", 0.12),
        ("silent", 0.10),
        ("erroring", 0.08),
        ("buggy-mild", 0.40),
    ),
    "CHN": (
        ("conformant", 0.40),
        ("conformant-fast", 0.18),
        ("silent", 0.12),
        ("erroring", 0.10),
        ("buggy-mild", 0.20),
    ),
    "DEU": (
        ("conformant", 0.44),
        ("conformant-fast", 0.22),
        ("silent", 0.12),
        ("erroring", 0.12),
        ("buggy-mild", 0.06),
        ("buggy-severe", 0.04),
    ),
    "USA": (
        ("conformant", 0.46),
        ("conformant-fast", 0.22),
        ("silent", 0.12),
        ("erroring", 0.12),
        ("buggy-mild", 0.05),
        ("buggy-severe", 0.03),
    ),
}

DEFAULT_AS_TYPE_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("isp", 0.55),
    ("business", 0.15),
    ("hosting", 0.12),
    ("education", 0.10),
    ("content", 0.08),
)


@dataclass(slots=True)
class WorldConfig:
    """All knobs of the synthetic world.  Defaults build the paper-scale
    (divided by ~1000) world used by the experiment suite."""

    seed: int = 2024
    num_ases: int = 600
    num_tier1: int = 10
    num_tier2: int = 110

    # Address plan: each AS gets a /28 block carved out of `base_network`.
    base_network: int = 0x2001_0000_0000_0000_0000_0000_0000_0000
    allocation_length: int = 28

    # Announcements.
    extra_announcement_mean: float = 1.6  # geometric mean of extra prefixes
    pi_slash48_fraction: float = 0.20  # extra announcements that are /48 PI
    more_specific_fraction: float = 0.015  # announcements longer than /48
    subnet_zero_active_probability: float = 0.15

    # Internal structure.
    mean_subnets_per_as: float = 70.0
    max_subnets_per_as: int = 2500
    mean_hosts_per_subnet: float = 1.8
    max_hosts_per_subnet: int = 8
    subnets_per_router_tail: float = 0.35  # Pareto-ish tail for BNG routers
    max_subnets_per_router: int = 4096
    single_router_as_fraction: float = 0.30
    aliased_subnet_fraction: float = 0.015
    alias_region_per_hosting_as: float = 0.25
    flaky_subnet_fraction: float = 0.25
    flaky_response_probability: float = 0.55
    subnet_death_probability: float = 0.035  # per re-scan epoch
    replies_from_peering_fraction: float = 0.08
    unstable_reply_source_fraction: float = 0.03
    errors_from_primary_fraction: float = 0.40
    sra_from_primary_fraction: float = 0.20
    # Router-level: last-hop routers that never emit Address Unreachable.
    silent_unreachable_fraction: float = 0.10
    # AS-level: networks filtering "No Route" errors for unrouted space.
    filters_unroutable_fraction: float = 0.85

    # ICMP error-suppression background load ("on-off behaviour", [28]).
    quiet_router_fraction: float = 0.70
    quiet_background_max: float = 0.15
    noisy_background_min: float = 0.20
    noisy_background_max: float = 0.90
    background_window_seconds: float = 1.0

    # Routing loops and amplification.
    looping_as_fraction: float = 0.18
    loops_per_as_mean: float = 3.0
    single_slash48_loop_fraction: float = 0.60
    loop_region_length_choices: tuple[int, ...] = (44, 40, 36, 34)
    loop_region_length_weights: tuple[float, ...] = (0.30, 0.30, 0.25, 0.15)
    buggy_loop_router_fraction: float = 0.27

    # IRR registrations.
    route6_registered_fraction: float = 0.85
    route6_extra_slash48_mean: float = 4.0
    route6_stale_fraction: float = 0.35  # registrations without BGP coverage

    # Misc.
    ixp_member_fraction: float = 0.25
    packet_loss: float = 0.01
    countries: tuple[tuple[str, float, float], ...] = DEFAULT_COUNTRIES
    as_type_weights: tuple[tuple[str, float], ...] = DEFAULT_AS_TYPE_WEIGHTS
    vendor_mix: dict[str, tuple[tuple[str, float], ...]] = field(
        default_factory=lambda: dict(DEFAULT_VENDOR_MIX)
    )
    loop_country_priors: dict[str, tuple[float, float]] = field(
        default_factory=lambda: dict(DEFAULT_LOOP_COUNTRY_PRIORS)
    )

    def __post_init__(self) -> None:
        if self.num_tier1 + self.num_tier2 >= self.num_ases:
            raise ValueError("tier1+tier2 must leave room for stub ASes")
        if not 0 <= self.packet_loss < 1:
            raise ValueError("packet_loss must be in [0, 1)")
        if len(self.loop_region_length_choices) != len(
            self.loop_region_length_weights
        ):
            raise ValueError("loop region choices/weights length mismatch")


def tiny_config(seed: int = 7) -> WorldConfig:
    """A small world for unit tests: ~60 ASes, a few thousand subnets."""
    return WorldConfig(
        seed=seed,
        num_ases=60,
        num_tier1=4,
        num_tier2=14,
        mean_subnets_per_as=18.0,
        max_subnets_per_as=300,
        route6_extra_slash48_mean=2.0,
    )
