"""Entity model of the simulated IPv6 Internet.

The world is a static description — ASes, routers, subnets, misconfigured
regions — plus a *resolution trie* that maps any probed destination address
to the entity responsible for answering it.  The packet-level behaviour
(forwarding, rate limiting, loop amplification) lives in
:mod:`repro.netsim.engine`; this module only holds state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from ..addr.ipv6 import IPv6Prefix
from ..bgp.table import BGPTable
from ..irr.database import IRRDatabase
from .profiles import VendorProfile
from ..bgp.lpm import LengthIndexedLPM


class ASType(enum.Enum):
    """Coarse network categories, mirroring the IPinfo ASN database."""

    ISP = "isp"
    HOSTING = "hosting"
    BUSINESS = "business"
    EDUCATION = "education"
    CONTENT = "content"


@dataclass(slots=True)
class Router:
    """One router: interfaces, vendor behaviour, and reply-source policy.

    ``reply_source_for`` (in the engine) usually picks the interface facing
    the probed subnet; ``peering_lan_address`` — an address inside the
    *provider's* space — substitutes when ``replies_from_peering`` is set,
    reproducing the paper's observation that SRA replies sometimes carry
    upstream addresses, making AS attribution error-prone.
    """

    router_id: int
    asn: int
    country: str
    vendor: VendorProfile
    loopback: int
    interface_addresses: list[int] = field(default_factory=list)
    subnet_interfaces: dict[int, int] = field(default_factory=dict)
    peering_lan_address: int | None = None
    replies_from_peering: bool = False
    answers_direct_ping: bool = False
    unstable_reply_source: bool = False
    is_border: bool = False
    # Reply-source policy: routers that source ICMP errors and/or SRA Echo
    # replies from their primary (loopback) address rather than the
    # subnet-facing interface.  When both flags hold, one scan can see the
    # same source address in Echo *and* error roles — the Fig. 4 "Both"
    # class.
    errors_from_primary: bool = False
    sra_from_primary: bool = False
    # Policy: some networks filter outbound Destination Unreachable
    # messages entirely ("no ip unreachables"), replying with silence.
    emits_unreachables: bool = True
    # Effective per-router loop replication multiplier; > 1.0 only for
    # routers running buggy firmware (vendor.replicates_in_loops).
    replication_factor: float = 1.0
    # Fraction of ICMP-error token-bucket capacity consumed by background
    # traffic, the driver of the "on-off" suppression behaviour; the engine
    # jitters this per scan epoch.
    background_error_load: float = 0.0

    def all_addresses(self) -> set[int]:
        addresses = {self.loopback, *self.interface_addresses}
        if self.peering_lan_address is not None:
            addresses.add(self.peering_lan_address)
        return addresses


@dataclass(slots=True)
class Subnet:
    """An active (assigned) subnet with its attached periphery router.

    ``hosts`` are responsive end-host addresses inside the subnet.
    ``flaky`` subnets answer only intermittently across scan epochs and
    ``death_epoch`` marks permanent churn — both drive the paper's
    stability figures (Fig. 6b).
    """

    prefix: IPv6Prefix
    asn: int
    router_id: int
    router_interface: int
    hosts: tuple[int, ...] = ()
    aliased: bool = False
    flaky: bool = False
    death_epoch: int | None = None

    @property
    def sra_address(self) -> int:
        return self.prefix.network


@dataclass(slots=True)
class LoopRegion:
    """A block of provider-aggregated space that loops customer<->provider.

    Packets to any address in ``prefix`` that does not match a more
    specific active subnet bounce between ``customer_router_id`` and
    ``provider_router_id`` until the hop limit expires.  The number of /48
    subnets the region contributes to loop statistics is
    :meth:`slash48_count`.
    """

    prefix: IPv6Prefix
    asn: int
    customer_router_id: int
    provider_router_id: int

    def slash48_count(self) -> int:
        if self.prefix.length >= 48:
            return 1
        return 1 << (48 - self.prefix.length)


@dataclass(slots=True)
class AliasRegion:
    """A fully-responsive region: every address answers Echo (from itself)."""

    prefix: IPv6Prefix
    asn: int


@dataclass(slots=True)
class InfraSubnet:
    """Infrastructure space (transit links, peering LANs) with router
    interfaces: maps interface address -> router id."""

    prefix: IPv6Prefix
    asn: int
    interfaces: dict[int, int] = field(default_factory=dict)


class EntryKind(enum.Enum):
    SUBNET = "subnet"
    ALIAS = "alias"
    LOOP = "loop"
    INFRA = "infra"


@dataclass(frozen=True, slots=True)
class ResolutionEntry:
    """What the resolution trie stores: a typed pointer to an entity."""

    kind: EntryKind
    payload: object


@dataclass(slots=True)
class ASInfo:
    """One autonomous system: identity, announcements, internals."""

    asn: int
    country: str
    as_type: ASType
    prefixes: list[IPv6Prefix] = field(default_factory=list)
    router_ids: list[int] = field(default_factory=list)
    border_router_id: int | None = None
    providers: list[int] = field(default_factory=list)
    customers: list[int] = field(default_factory=list)
    peers: list[int] = field(default_factory=list)
    is_ixp_member: bool = False
    # Network-wide policy: filter outbound "No Route" unreachables for
    # unrouted internal space (common at network edges).
    filters_unroutable: bool = False


@dataclass(frozen=True, slots=True)
class TransitHop:
    """One traversed transit router: which router, replying from where."""

    router_id: int
    interface: int


@dataclass(slots=True)
class VantagePoint:
    """The scanner's location: a measurement AS with an upstream router."""

    asn: int
    address: int
    upstream_router_id: int


@dataclass(slots=True)
class World:
    """The full simulated Internet, as consumed by the engine and survey."""

    seed: int
    bgp: BGPTable
    irr: IRRDatabase
    ases: dict[int, ASInfo] = field(default_factory=dict)
    routers: dict[int, Router] = field(default_factory=dict)
    subnets: dict[int, Subnet] = field(default_factory=dict)  # by network int
    loop_regions: list[LoopRegion] = field(default_factory=list)
    alias_regions: list[AliasRegion] = field(default_factory=list)
    infra_subnets: dict[int, InfraSubnet] = field(default_factory=dict)
    resolution: LengthIndexedLPM[ResolutionEntry] = field(
        default_factory=LengthIndexedLPM
    )
    paths: dict[int, tuple[TransitHop, ...]] = field(default_factory=dict)
    vantage: VantagePoint | None = None
    packet_loss: float = 0.01
    # Artifact provenance: set on worlds loaded from (or streamed to) a
    # binary world artifact.  A non-None path switches the sharded runner
    # to O(KB) worker bootstrap — workers receive (path, fingerprint) and
    # mmap the artifact instead of unpickling the whole world.  Such
    # worlds are *static*: ``routers``/``subnets`` are lazy read-only
    # maps and ``resolution`` is a FrozenLPM, so the register_*/remove
    # mutators below raise on them.
    artifact_path: str | None = None
    artifact_fingerprint: bytes | None = None

    def register_subnet(self, subnet: Subnet) -> None:
        self.subnets[subnet.prefix.network] = subnet
        self.resolution.insert(
            subnet.prefix, ResolutionEntry(EntryKind.SUBNET, subnet)
        )

    def register_loop(self, region: LoopRegion) -> None:
        self.loop_regions.append(region)
        self.resolution.insert(
            region.prefix, ResolutionEntry(EntryKind.LOOP, region)
        )

    def register_alias(self, region: AliasRegion) -> None:
        self.alias_regions.append(region)
        self.resolution.insert(
            region.prefix, ResolutionEntry(EntryKind.ALIAS, region)
        )

    def register_infra(self, infra: InfraSubnet) -> None:
        self.infra_subnets[infra.prefix.network] = infra
        self.resolution.insert(
            infra.prefix, ResolutionEntry(EntryKind.INFRA, infra)
        )

    def remove_loop(self, region: LoopRegion) -> None:
        """Drop a loop region (operator applied a null route, Appendix C)."""
        self.loop_regions.remove(region)
        self.resolution.remove(region.prefix)

    def all_hosts(self) -> Iterator[int]:
        """Every responsive host address in the world."""
        for subnet in self.subnets.values():
            yield from subnet.hosts

    def all_router_addresses(self) -> set[int]:
        """Ground truth: every router-owned address (for recall metrics)."""
        addresses: set[int] = set()
        for router in self.routers.values():
            addresses.update(router.all_addresses())
        return addresses

    def router_for_address(self, address: int) -> Router | None:
        """The router owning ``address`` as one of its interfaces, if any."""
        match = self.resolution.longest_match(address)
        if match is None:
            return None
        entry = match[1]
        if entry.kind is EntryKind.SUBNET:
            subnet: Subnet = entry.payload  # type: ignore[assignment]
            if address == subnet.router_interface:
                return self.routers[subnet.router_id]
            return None
        if entry.kind is EntryKind.INFRA:
            infra: InfraSubnet = entry.payload  # type: ignore[assignment]
            router_id = infra.interfaces.get(address)
            return None if router_id is None else self.routers[router_id]
        return None

    def country_of_asn(self, asn: int) -> str | None:
        info = self.ases.get(asn)
        return None if info is None else info.country

    def type_of_asn(self, asn: int) -> ASType | None:
        info = self.ases.get(asn)
        return None if info is None else info.as_type
