"""Synthetic IPv6 Internet generator.

Builds a :class:`~repro.topology.entities.World` from a
:class:`~repro.topology.config.WorldConfig`:

1. assign AS identities (ASN, country, type, tier) and the business-
   relationship graph (tier-1 clique, tier-2 transit, stub customers),
2. allocate each AS a /28 address block and generate its BGP announcements
   (/32 LIR blocks, /40–/48 slices, /48 PI space, a few more-specifics),
3. create core infrastructure: border/core routers, infrastructure /64s,
   peering LANs along provider edges,
4. compute vantage-to-AS transit paths over the relationship graph,
5. populate active /64 subnets with periphery routers and hosts (clustered
   in low subnet indices, as operationally common),
6. inject aliased regions, routing-loop regions (customer/provider
   misconfiguration, Appendix C) and the amplification firmware bug,
7. register route6 objects in the IRR (including stale ones).

Everything is driven by one seeded ``random.Random`` so worlds are
reproducible bit-for-bit.
"""

from __future__ import annotations

import math
import random
from array import array
from dataclasses import dataclass
from pathlib import Path

import networkx as nx

from ..addr.ipv6 import IPv6Prefix
from ..bgp.table import Announcement, BGPTable
from ..irr.database import IRRDatabase
from ..irr.rpsl import Route6Object
from .config import LOOP_OTHER_MASS, LOOP_OTHER_ROUTERS, WorldConfig
from .entities import (
    AliasRegion,
    ASInfo,
    ASType,
    EntryKind,
    InfraSubnet,
    LoopRegion,
    Router,
    Subnet,
    TransitHop,
    VantagePoint,
    World,
)
from .profiles import VendorProfile, vendor_by_name

_INFRA_SLASH48_INDEX = 0xFFFF
_ALIAS_INDEX_RANGE = (0x4000, 0x7FFF)
_LOOP_INDEX_RANGE = (0x8000, 0xFEFF)
_ACTIVE_CLUSTER_SLASH48 = 8  # active subnets cluster in the first /48s


@dataclass(slots=True)
class _ASSlot:
    """Working state for one AS during generation."""

    info: ASInfo
    block: int  # the /28 allocation network
    tier: int  # 1, 2, or 3 (stub)
    size_factor: float
    used_slash32: set[int] | None = None


class WorldBuilder:
    """Single-use builder; call :meth:`build` once.

    With ``artifact_writer`` set, generation *streams*: finished periphery
    routers and subnets spill straight into the artifact and are evicted
    from the in-memory world, so peak RSS is bounded by the per-AS working
    set plus the O(#ASes) core — not by world size.  The RNG draw sequence
    is byte-for-byte the draw sequence of an eager build, so the loaded
    artifact world is the eager world.
    """

    def __init__(
        self, config: WorldConfig, *, artifact_writer=None
    ) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.world = World(
            seed=config.seed,
            bgp=BGPTable(),
            irr=IRRDatabase(),
            packet_loss=config.packet_loss,
        )
        self._slots: dict[int, _ASSlot] = {}
        self._graph = nx.Graph()
        self._next_router_id = 1
        self._country_names = [c for c, _, _ in config.countries]
        self._country_weights = [w for _, w, _ in config.countries]
        self._country_size = {c: s for c, _, s in config.countries}
        self._vendor_cache: dict[str, tuple[list[VendorProfile], list[float]]] = {}
        self._writer = artifact_writer
        # Routers created before streaming flush is enabled (core, border)
        # stay pinned in memory: later steps mutate them (peering LANs,
        # loop-edge firmware).  Everything created afterwards is flushed
        # as soon as its owning step finishes with it.
        self._flush_enabled = False
        self._unflushed: list[Router] = []

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #

    def build(self) -> World:
        self._assign_identities()
        self._build_relationships()
        self._allocate_announcements()
        self._build_core_infrastructure()
        self._place_vantage()
        self._compute_paths()
        if self._writer is not None:
            self._enable_streaming()
        self._populate_subnets()
        self._inject_aliases()
        self._inject_loops()
        self._register_route6()
        if self._writer is not None:
            self._flush_routers()
            for router in self.world.routers.values():
                self._writer.add_router(router)  # the pinned core
            self._writer.finalize(self.world)
        return self.world

    # ------------------------------------------------------------------ #
    # streaming (artifact) mode
    # ------------------------------------------------------------------ #

    def _enable_streaming(self) -> None:
        """Switch to spill-as-you-go after the core is built.

        Per-AS router-id lists become ``array('q')`` — at paper magnitude
        they are the only O(#routers) state the small (pickled) part of
        the artifact keeps, and boxed ints would cost ~5x the RAM.
        """
        for info in self.world.ases.values():
            info.router_ids = array("q", info.router_ids)  # type: ignore[assignment]
        self._flush_enabled = True

    def _flush_routers(self) -> None:
        """Spill finished periphery routers to the artifact and evict
        them from the in-memory world (no-op in eager builds)."""
        if not self._unflushed:
            return
        writer = self._writer
        routers = self.world.routers
        for router in self._unflushed:
            writer.add_router(router)
            del routers[router.router_id]
        self._unflushed.clear()

    def _register_subnet(self, subnet: Subnet) -> None:
        if self._writer is None:
            self.world.register_subnet(subnet)
            return
        row = self._writer.add_subnet(subnet)
        self._writer.add_resolution(subnet.prefix, EntryKind.SUBNET, row)

    def _register_infra(self, infra: InfraSubnet) -> None:
        if self._writer is None:
            self.world.register_infra(infra)
            return
        # Infra subnets stay in memory (O(#ASes), and later steps add
        # interfaces); only the resolution entry goes to the artifact,
        # keyed by its own network (ref unused).
        self.world.infra_subnets[infra.prefix.network] = infra
        self._writer.add_resolution(infra.prefix, EntryKind.INFRA, -1)

    def _register_alias(self, region: AliasRegion) -> None:
        if self._writer is None:
            self.world.register_alias(region)
            return
        self.world.alias_regions.append(region)
        self._writer.add_resolution(
            region.prefix, EntryKind.ALIAS, len(self.world.alias_regions) - 1
        )

    def _register_loop(self, region: LoopRegion) -> None:
        if self._writer is None:
            self.world.register_loop(region)
            return
        self.world.loop_regions.append(region)
        self._writer.add_resolution(
            region.prefix, EntryKind.LOOP, len(self.world.loop_regions) - 1
        )

    # ------------------------------------------------------------------ #
    # step 1: identities
    # ------------------------------------------------------------------ #

    def _assign_identities(self) -> None:
        config = self.config
        asns = self.rng.sample(range(1000, 64000), config.num_ases)
        type_names = [t for t, _ in config.as_type_weights]
        type_weights = [w for _, w in config.as_type_weights]
        for index, asn in enumerate(asns):
            if index < config.num_tier1:
                tier = 1
                country = self.rng.choice(
                    ["USA", "DEU", "GBR", "JPN", "FRA", "NLD", "SWE"]
                )
                as_type = ASType.ISP
            elif index < config.num_tier1 + config.num_tier2:
                tier = 2
                country = self._draw_country()
                as_type = ASType.ISP
            else:
                tier = 3
                country = self._draw_country()
                as_type = ASType(
                    self.rng.choices(type_names, weights=type_weights)[0]
                )
            info = ASInfo(asn=asn, country=country, as_type=as_type)
            info.is_ixp_member = self.rng.random() < config.ixp_member_fraction
            info.filters_unroutable = (
                self.rng.random() < config.filters_unroutable_fraction
            )
            block = config.base_network + (
                index << (128 - config.allocation_length)
            )
            size = self._size_factor(country, as_type, tier)
            self._slots[asn] = _ASSlot(
                info=info, block=block, tier=tier, size_factor=size
            )
            self.world.ases[asn] = info
            self._graph.add_node(asn)

    def _draw_country(self) -> str:
        return self.rng.choices(self._country_names, weights=self._country_weights)[0]

    def _size_factor(self, country: str, as_type: ASType, tier: int) -> float:
        base = self._country_size.get(country, 0.5)
        if as_type is ASType.ISP:
            base *= 1.6
        elif as_type is ASType.HOSTING:
            base *= 0.8
        else:
            base *= 0.4
        if tier == 2:
            base *= 1.5
        return base

    # ------------------------------------------------------------------ #
    # step 2: relationships
    # ------------------------------------------------------------------ #

    def _build_relationships(self) -> None:
        tier1 = [asn for asn, slot in self._slots.items() if slot.tier == 1]
        tier2 = [asn for asn, slot in self._slots.items() if slot.tier == 2]
        stubs = [asn for asn, slot in self._slots.items() if slot.tier == 3]
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                self._add_peer(a, b)
        for asn in tier2:
            for provider in self.rng.sample(tier1, k=min(2, len(tier1))):
                self._add_provider(asn, provider)
            for peer in self.rng.sample(tier2, k=min(2, len(tier2))):
                if peer != asn and peer not in self.world.ases[asn].peers:
                    self._add_peer(asn, peer)
        for asn in stubs:
            count = 1 + (self.rng.random() < 0.35) + (self.rng.random() < 0.10)
            pool = tier2 if self.rng.random() < 0.9 else tier1
            for provider in self.rng.sample(pool, k=min(count, len(pool))):
                self._add_provider(asn, provider)

    def _add_provider(self, customer: int, provider: int) -> None:
        if provider in self.world.ases[customer].providers:
            return
        self.world.ases[customer].providers.append(provider)
        self.world.ases[provider].customers.append(customer)
        self._graph.add_edge(customer, provider)

    def _add_peer(self, a: int, b: int) -> None:
        self.world.ases[a].peers.append(b)
        self.world.ases[b].peers.append(a)
        self._graph.add_edge(a, b)

    # ------------------------------------------------------------------ #
    # step 3: announcements
    # ------------------------------------------------------------------ #

    def _allocate_announcements(self) -> None:
        config = self.config
        for asn, slot in self._slots.items():
            slot.used_slash32 = set()
            prefixes: list[IPv6Prefix] = []
            prefixes.append(self._slash32(slot, 0))
            slot.used_slash32.add(0)
            extra = min(6, self._geometric(config.extra_announcement_mean))
            for _ in range(extra):
                prefixes.append(self._draw_extra_announcement(slot))
            if self.rng.random() < config.more_specific_fraction * 20:
                # a /52 more-specific; half covered by the AS's own /32,
                # half in otherwise-unannounced space (exercises both
                # branches of the stage-2 supernet rule).
                covered = self.rng.random() < 0.5
                slash32_index = 0 if covered else self._free_slash32(slot)
                base = self._slash32(slot, slash32_index)
                subnet_bits = self.rng.randrange(1 << 20)
                prefix = IPv6Prefix(
                    base.network | (subnet_bits << (128 - 52)), 52
                )
                prefixes.append(prefix)
            for prefix in prefixes:
                self.world.bgp.add(Announcement(prefix=prefix, origin_asn=asn))
                slot.info.prefixes.append(prefix)

    def _slash32(self, slot: _ASSlot, index: int) -> IPv6Prefix:
        return IPv6Prefix(slot.block | (index << (128 - 32)), 32)

    def _free_slash32(self, slot: _ASSlot) -> int:
        assert slot.used_slash32 is not None
        for index in range(16):
            if index not in slot.used_slash32:
                slot.used_slash32.add(index)
                return index
        return 15

    def _draw_extra_announcement(self, slot: _ASSlot) -> IPv6Prefix:
        config = self.config
        index = self._free_slash32(slot)
        base = self._slash32(slot, index)
        roll = self.rng.random()
        if roll < config.pi_slash48_fraction:
            length = 48
        elif roll < config.pi_slash48_fraction + 0.15:
            length = 44
        elif roll < config.pi_slash48_fraction + 0.30:
            length = 40
        else:
            return base
        offset = self.rng.randrange(1 << (length - 32))
        return IPv6Prefix(base.network | (offset << (128 - length)), length)

    # ------------------------------------------------------------------ #
    # step 4: core infrastructure
    # ------------------------------------------------------------------ #

    def _build_core_infrastructure(self) -> None:
        for asn, slot in self._slots.items():
            info = slot.info
            home = self._infra_home_prefix(info)
            infra_net = self._infra_slash64(home)
            infra = InfraSubnet(prefix=IPv6Prefix(infra_net, 64), asn=asn)
            core_count = 3 if slot.tier == 1 else 2 if slot.tier == 2 else 1
            for core_index in range(core_count):
                router = self._new_router(info, is_border=core_index == 0)
                iface = infra_net | (core_index + 1)
                router.interface_addresses.append(iface)
                router.loopback = infra_net | (0x100 + core_index)
                infra.interfaces[iface] = router.router_id
                infra.interfaces[router.loopback] = router.router_id
                if core_index == 0:
                    info.border_router_id = router.router_id
            self._register_infra(infra)
        # Peering LANs carved from the provider's infrastructure /48.
        for asn, slot in self._slots.items():
            info = slot.info
            for lan_index, provider_asn in enumerate(info.providers, start=1):
                provider_info = self.world.ases[provider_asn]
                provider_home = self._infra_home_prefix(provider_info)
                lan_net = self._infra_slash64(provider_home, index=asn % 0xFFF0 + 1)
                lan = self.world.infra_subnets.get(lan_net)
                if lan is None:
                    lan = InfraSubnet(prefix=IPv6Prefix(lan_net, 64), asn=provider_asn)
                    self._register_infra(lan)
                provider_border = self.world.routers[
                    provider_info.border_router_id  # type: ignore[index]
                ]
                provider_iface = lan_net | 1
                if provider_iface not in lan.interfaces:
                    lan.interfaces[provider_iface] = provider_border.router_id
                    provider_border.interface_addresses.append(provider_iface)
                border = self.world.routers[info.border_router_id]  # type: ignore[index]
                customer_iface = lan_net | (2 + lan_index)
                lan.interfaces[customer_iface] = border.router_id
                border.interface_addresses.append(customer_iface)
                if border.peering_lan_address is None:
                    border.peering_lan_address = customer_iface

    def _infra_home_prefix(self, info: ASInfo) -> IPv6Prefix:
        return info.prefixes[0]

    def _infra_slash64(self, home: IPv6Prefix, index: int = 0) -> int:
        """The ``index``-th infrastructure /64, placed in ``home``'s *last*
        /48 so it never collides with the low-index active-subnet cluster."""
        if home.length <= 48:
            last_slash48 = home.network | (
                ((1 << (48 - home.length)) - 1) << (128 - 48)
            )
            return last_slash48 | ((index & 0xFFFF) << (128 - 64))
        # Announcement longer than /48: use its last /64s.
        span = 1 << (64 - home.length)
        return home.network | (((span - 1 - index) % span) << (128 - 64))

    def _new_router(self, info: ASInfo, *, is_border: bool = False) -> Router:
        vendor = self._draw_vendor(info.country)
        router = Router(
            router_id=self._next_router_id,
            asn=info.asn,
            country=info.country,
            vendor=vendor,
            is_border=is_border,
            loopback=0,
            answers_direct_ping=self.rng.random()
            < vendor.answers_direct_ping_probability,
            unstable_reply_source=self.rng.random()
            < self.config.unstable_reply_source_fraction,
            errors_from_primary=self.rng.random()
            < self.config.errors_from_primary_fraction,
            sra_from_primary=self.rng.random()
            < self.config.sra_from_primary_fraction,
            emits_unreachables=self.rng.random()
            >= self.config.silent_unreachable_fraction,
            background_error_load=self._draw_background_load(),
        )
        self._next_router_id += 1
        self.world.routers[router.router_id] = router
        info.router_ids.append(router.router_id)
        if self._flush_enabled:
            self._unflushed.append(router)
        return router

    def _draw_vendor(self, country: str) -> VendorProfile:
        cached = self._vendor_cache.get(country)
        if cached is None:
            mix = self.config.vendor_mix.get(
                country, self.config.vendor_mix["default"]
            )
            vendors = [vendor_by_name(name) for name, _ in mix]
            weights = [w for _, w in mix]
            cached = (vendors, weights)
            self._vendor_cache[country] = cached
        vendors, weights = cached
        return self.rng.choices(vendors, weights=weights)[0]

    def _draw_background_load(self) -> float:
        config = self.config
        if self.rng.random() < config.quiet_router_fraction:
            return self.rng.uniform(0.0, config.quiet_background_max)
        return self.rng.uniform(
            config.noisy_background_min, config.noisy_background_max
        )

    # ------------------------------------------------------------------ #
    # step 5: vantage point and transit paths
    # ------------------------------------------------------------------ #

    def _place_vantage(self) -> None:
        tier2 = [asn for asn, slot in self._slots.items() if slot.tier == 2]
        upstream_asn = self.rng.choice(tier2)
        upstream_info = self.world.ases[upstream_asn]
        upstream_router_id = upstream_info.border_router_id
        assert upstream_router_id is not None
        vantage_asn = 64999
        vantage_info = ASInfo(
            asn=vantage_asn, country="DEU", as_type=ASType.EDUCATION
        )
        vantage_info.providers.append(upstream_asn)
        upstream_info.customers.append(vantage_asn)
        self.world.ases[vantage_asn] = vantage_info
        self._graph.add_node(vantage_asn)
        self._graph.add_edge(vantage_asn, upstream_asn)
        # The vantage announces a /48 carved from its upstream's space.
        upstream_home = self._infra_home_prefix(upstream_info)
        vantage_prefix = IPv6Prefix(
            upstream_home.network | (0xFFFE << (128 - 48)), 48
        )
        vantage_info.prefixes.append(vantage_prefix)
        self.world.bgp.add(
            Announcement(prefix=vantage_prefix, origin_asn=vantage_asn)
        )
        self.world.vantage = VantagePoint(
            asn=vantage_asn,
            address=vantage_prefix.network | 0x1,
            upstream_router_id=upstream_router_id,
        )

    def _compute_paths(self) -> None:
        assert self.world.vantage is not None
        source = self.world.vantage.asn
        shortest = nx.single_source_shortest_path(self._graph, source)
        for asn, info in self.world.ases.items():
            if asn == source:
                continue
            as_path = shortest.get(asn)
            if as_path is None:
                # Disconnected AS (should not happen): route via upstream only.
                as_path = [source, asn]
            hops: list[TransitHop] = []
            for hop_asn in as_path[1:]:
                hop_info = self.world.ases[hop_asn]
                border_id = hop_info.border_router_id
                if border_id is None:
                    continue
                border = self.world.routers[border_id]
                iface = border.interface_addresses[0]
                hops.append(TransitHop(router_id=border_id, interface=iface))
            self.world.paths[asn] = tuple(hops)
        self.world.paths[source] = (
            TransitHop(
                router_id=self.world.vantage.upstream_router_id,
                interface=self.world.routers[
                    self.world.vantage.upstream_router_id
                ].interface_addresses[0],
            ),
        )

    # ------------------------------------------------------------------ #
    # step 6: periphery subnets, routers, hosts
    # ------------------------------------------------------------------ #

    def _populate_subnets(self) -> None:
        config = self.config
        for asn, slot in self._slots.items():
            info = slot.info
            count = self._subnet_count(slot)
            networks = self._draw_subnet_networks(info, count)
            if (
                self.rng.random() < config.subnet_zero_active_probability
                and info.prefixes
            ):
                networks.add(info.prefixes[0].network)
            single_router_as = (
                slot.tier == 3
                and self.rng.random() < config.single_router_as_fraction
            )
            self._attach_routers(info, sorted(networks), single_router_as)
            self._flush_routers()

    def _subnet_count(self, slot: _ASSlot) -> int:
        config = self.config
        mean = config.mean_subnets_per_as * slot.size_factor
        sigma = 1.0
        mu = math.log(max(mean, 1.0)) - sigma * sigma / 2
        value = int(self.rng.lognormvariate(mu, sigma))
        return max(1, min(config.max_subnets_per_as, value))

    def _draw_subnet_networks(self, info: ASInfo, count: int) -> set[int]:
        networks: set[int] = set()
        attempts = 0
        eligible = [p for p in info.prefixes if p.length <= 64]
        if not eligible:
            return networks
        while len(networks) < count and attempts < count * 6:
            attempts += 1
            prefix = self.rng.choices(
                eligible, weights=[3.0 if p == eligible[0] else 1.0 for p in eligible]
            )[0]
            networks.add(self._random_slash64(prefix))
        return networks

    def _random_slash64(self, prefix: IPv6Prefix) -> int:
        """A /64 network inside ``prefix``.

        Allocation mimics operational practice: customer /48s are drawn
        half from a dense low-index cluster (sequential assignment) and
        half spread across the whole announcement (regional/PoP split),
        while the /64 index *within* a /48 is strongly low-biased — the
        first /64 of an assignment is the one most likely in use.  The
        spread component is what gives the enumerating/sampling /48 scans
        a realistic, density-proportional hit rate.
        """
        free_bits = 64 - prefix.length
        if free_bits <= 0:
            return prefix.network
        if prefix.length > 48:
            span = 1 << free_bits
            index = min(span - 1, int(self.rng.expovariate(1 / 8.0)))
            return prefix.network | (index << (128 - 64))
        slash48_span = 1 << (48 - prefix.length)
        if self.rng.random() < 0.5:
            slash48 = min(
                slash48_span - 1, int(self.rng.expovariate(1 / 6.0))
            )
        else:
            slash48 = self.rng.randrange(slash48_span)
        slash64 = min(0xFFFF, int(self.rng.expovariate(1 / 2.0)))
        if slash48 == 0 and slash64 == 0:
            # The announcement's subnet zero is governed by the explicit
            # subnet_zero_active_probability coin, not by random placement.
            slash64 = 1
        return prefix.network | (slash48 << (128 - 48)) | (slash64 << (128 - 64))

    def _attach_routers(
        self, info: ASInfo, networks: list[int], single_router_as: bool
    ) -> None:
        remaining = list(networks)
        self.rng.shuffle(remaining)
        border = (
            self.world.routers[info.border_router_id]
            if info.border_router_id is not None
            else None
        )
        while remaining:
            if single_router_as and border is not None:
                router = border
                take = len(remaining)
            else:
                router = self._new_router(info)
                take = self._router_subnet_count(info)
                self._maybe_assign_peering_source(router, info)
            for network in remaining[:take]:
                self._create_subnet(info, router, network)
            remaining = remaining[take:]

    def _router_subnet_count(self, info: ASInfo) -> int:
        config = self.config
        if (
            info.as_type is ASType.ISP
            and self.rng.random() < config.subnets_per_router_tail
        ):
            # BNG-style aggregation router: heavy-tailed subnet count.
            return min(
                config.max_subnets_per_router,
                int(self.rng.paretovariate(0.9) * 16),
            )
        return 1 + self._geometric(3.0)

    def _maybe_assign_peering_source(self, router: Router, info: ASInfo) -> None:
        config = self.config
        if not info.providers or self.rng.random() > config.replies_from_peering_fraction:
            return
        border = (
            self.world.routers[info.border_router_id]
            if info.border_router_id is not None
            else None
        )
        if border is None or border.peering_lan_address is None:
            return
        # Allocate this router its own address on the provider-side LAN.
        lan_net = border.peering_lan_address & ~((1 << 64) - 1)
        lan = self.world.infra_subnets.get(lan_net)
        if lan is None:
            return
        candidate = lan_net | (0x1000 + router.router_id % 0xE000)
        if candidate in lan.interfaces:
            return
        lan.interfaces[candidate] = router.router_id
        router.peering_lan_address = candidate
        router.replies_from_peering = True

    def _create_subnet(self, info: ASInfo, router: Router, network: int) -> None:
        config = self.config
        iface = network | self.rng.choice((1, 1, 1, 2, 0xFE))
        hosts = tuple(
            sorted(
                {
                    network | self._host_iid()
                    for _ in range(
                        min(
                            config.max_hosts_per_subnet,
                            self._poisson(config.mean_hosts_per_subnet),
                        )
                    )
                }
                - {network, iface}
            )
        )
        death_epoch: int | None = None
        if self.rng.random() < config.subnet_death_probability * 6:
            death_epoch = 1 + self._geometric(
                1.0 / max(config.subnet_death_probability, 1e-9) / 20
            )
        subnet = Subnet(
            prefix=IPv6Prefix(network, 64),
            asn=info.asn,
            router_id=router.router_id,
            router_interface=iface,
            hosts=hosts,
            aliased=self.rng.random() < config.aliased_subnet_fraction,
            flaky=self.rng.random() < config.flaky_subnet_fraction,
            death_epoch=death_epoch,
        )
        router.subnet_interfaces[network] = iface
        router.interface_addresses.append(iface)
        if router.loopback == 0:
            router.loopback = iface
        self._register_subnet(subnet)

    def _host_iid(self) -> int:
        if self.rng.random() < 0.4:
            return self.rng.randrange(3, 0x100)  # low-byte assignment
        return self.rng.randrange(1 << 64) | 0x1  # SLAAC-ish, never 0

    # ------------------------------------------------------------------ #
    # step 7: aliases
    # ------------------------------------------------------------------ #

    def _inject_aliases(self) -> None:
        config = self.config
        for asn, slot in self._slots.items():
            info = slot.info
            if info.as_type is not ASType.HOSTING:
                continue
            if self.rng.random() > config.alias_region_per_hosting_as:
                continue
            home = info.prefixes[0]
            if home.length > 48:
                continue
            index = self.rng.randrange(*_ALIAS_INDEX_RANGE)
            index >>= max(0, home.length - 32)
            network = home.network | (index << (128 - 48))
            region = AliasRegion(prefix=IPv6Prefix(network, 48), asn=asn)
            self._register_alias(region)

    # ------------------------------------------------------------------ #
    # step 8: routing loops and amplification
    # ------------------------------------------------------------------ #

    def _inject_loops(self) -> None:
        config = self.config
        stubs = [
            slot
            for slot in self._slots.values()
            if slot.tier == 3 and slot.info.providers
        ]
        target_count = max(1, int(len(self._slots) * config.looping_as_fraction))
        weights = [
            self._loop_router_weight(slot.info.country) for slot in stubs
        ]
        chosen: set[int] = set()
        while len(chosen) < min(target_count, len(stubs)):
            slot = self.rng.choices(stubs, weights=weights)[0]
            chosen.add(slot.info.asn)
        for asn in chosen:
            self._inject_loops_for_as(self._slots[asn])
            self._flush_routers()

    def _loop_router_weight(self, country: str) -> float:
        prior = self.config.loop_country_priors.get(country)
        if prior is None:
            return LOOP_OTHER_ROUTERS / 60
        return prior[1]

    def _loop_mass_bias(self, country: str) -> float:
        """How strongly the country prefers large loop regions."""
        prior = self.config.loop_country_priors.get(country)
        if prior is None:
            return 1.0
        mass, routers = prior
        return max(0.25, (mass / max(routers, 1e-6)) / (LOOP_OTHER_MASS / LOOP_OTHER_ROUTERS))

    def _inject_loops_for_as(self, slot: _ASSlot) -> None:
        config = self.config
        info = slot.info
        provider_asn = info.providers[0]
        provider_info = self.world.ases[provider_asn]
        provider_router_id = provider_info.border_router_id
        if provider_router_id is None:
            return
        router_count = 1 + self._geometric(config.loops_per_as_mean - 1)
        for index in range(router_count):
            if index == 0 and info.border_router_id is not None:
                edge_router = self.world.routers[info.border_router_id]
            else:
                edge_router = self._new_router(info)
                edge_router.loopback = (
                    info.prefixes[0].network
                    | (_INFRA_SLASH48_INDEX << (128 - 48))
                    | (0x200 + index)
                )
                edge_router.interface_addresses.append(edge_router.loopback)
                self._register_loopback_iface(info, edge_router)
            self._maybe_make_buggy(edge_router)
            for region in self._draw_loop_regions(slot, edge_router.router_id, provider_router_id):
                self._register_loop(region)

    def _register_loopback_iface(self, info: ASInfo, router: Router) -> None:
        home = self._infra_home_prefix(info)
        infra_net = self._infra_slash64(home)
        infra = self.world.infra_subnets.get(infra_net)
        if infra is not None:
            infra.interfaces[router.loopback] = router.router_id

    def _maybe_make_buggy(self, router: Router) -> None:
        config = self.config
        if self.rng.random() > config.buggy_loop_router_fraction:
            return
        if router.country in ("DEU", "USA") and self.rng.random() < 0.25:
            router.vendor = vendor_by_name("buggy-severe")
            router.replication_factor = self.rng.uniform(1.42, 1.55)
        else:
            # Skewed towards barely-replicating firmware: the paper finds
            # 98 % of amplification factors <= 10, with maxima around 51
            # in BRA/CHN (1.14**30 ~ 51 at hop limit 64).
            router.vendor = vendor_by_name("buggy-mild")
            router.replication_factor = 1.01 + 0.13 * self.rng.random() ** 4

    def _draw_loop_regions(
        self, slot: _ASSlot, customer_router_id: int, provider_router_id: int
    ) -> list[LoopRegion]:
        config = self.config
        info = slot.info
        eligible = [p for p in info.prefixes if p.length <= 44]
        if not eligible:
            return []
        regions: list[LoopRegion] = []
        single = self.rng.random() < config.single_slash48_loop_fraction
        region_count = 1 if single else 1 + self._geometric(1.0)
        bias = self._loop_mass_bias(info.country)
        for _ in range(region_count):
            home = self.rng.choice(eligible)
            if single:
                length = 48
            else:
                weights = [
                    w * (bias if length <= 40 else 1.0)
                    for length, w in zip(
                        config.loop_region_length_choices,
                        config.loop_region_length_weights,
                    )
                ]
                length = self.rng.choices(
                    config.loop_region_length_choices, weights=weights
                )[0]
            length = max(length, home.length + 2)
            network = self._loop_region_network(home, length)
            if network is None:
                continue
            regions.append(
                LoopRegion(
                    prefix=IPv6Prefix(network, length),
                    asn=info.asn,
                    customer_router_id=customer_router_id,
                    provider_router_id=provider_router_id,
                )
            )
        return regions

    def _loop_region_network(self, home: IPv6Prefix, length: int) -> int | None:
        """Place a loop region in the upper half of ``home``'s /48 space."""
        free_bits = length - home.length
        if free_bits <= 0:
            return None
        span = 1 << free_bits
        index = self.rng.randrange(span // 2, max(span // 2 + 1, span - span // 16))
        return home.network | (index << (128 - length))

    # ------------------------------------------------------------------ #
    # step 9: IRR registrations
    # ------------------------------------------------------------------ #

    def _register_route6(self) -> None:
        config = self.config
        for asn, slot in self._slots.items():
            info = slot.info
            for prefix in info.prefixes:
                if self.rng.random() < config.route6_registered_fraction:
                    self.world.irr.add(
                        Route6Object(
                            prefix=prefix,
                            origin_asn=asn,
                            descr=f"{info.as_type.value} block",
                            maintainer=f"MAINT-AS{asn}",
                            source="SYNTH",
                        )
                    )
            extras = self._geometric(config.route6_extra_slash48_mean)
            for _ in range(extras):
                prefix = self._draw_route6_extra(slot)
                if prefix is not None:
                    self.world.irr.add(
                        Route6Object(
                            prefix=prefix,
                            origin_asn=asn,
                            descr="customer assignment",
                            maintainer=f"MAINT-AS{asn}",
                            source="SYNTH",
                        )
                    )

    def _draw_route6_extra(self, slot: _ASSlot) -> IPv6Prefix | None:
        config = self.config
        if self.rng.random() < config.route6_stale_fraction:
            # Stale registration: space never announced in BGP.
            index = self._free_slash32(slot)
            base = self._slash32(slot, index)
            offset = self.rng.randrange(1 << 16)
            return IPv6Prefix(base.network | (offset << (128 - 48)), 48)
        home = slot.info.prefixes[0]
        if home.length > 48:
            return None
        offset = self.rng.randrange(1 << (48 - home.length))
        return IPv6Prefix(home.network | (offset << (128 - 48)), 48)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _geometric(self, mean: float) -> int:
        if mean <= 0:
            return 0
        return int(self.rng.expovariate(1.0 / mean))

    def _poisson(self, mean: float) -> int:
        # Knuth's algorithm; means here are tiny so this is fast.
        limit = math.exp(-mean)
        k, product = 0, 1.0
        while True:
            product *= self.rng.random()
            if product <= limit:
                return k
            k += 1


def build_world(config: WorldConfig | None = None) -> World:
    """Build the default (or a custom-configured) simulated Internet."""
    return WorldBuilder(config or WorldConfig()).build()


def build_world_artifact(
    config: WorldConfig | None, path: str | Path
) -> World:
    """Generate a world streamed straight into a binary artifact at
    ``path`` and return the mmap-loaded (lazy) world.

    Peak generation RSS is bounded by the per-AS working set plus the
    O(#ASes) core — periphery routers and subnets spill to disk as soon
    as their owning step finishes with them — so paper-magnitude worlds
    (hundreds of thousands of routers) build in a flat footprint.  The
    returned world carries ``artifact_path``, which switches the sharded
    runner to O(KB) worker bootstrap.
    """
    from .artifact import (
        WorldArtifactWriter,
        build_fingerprint,
        load_world_artifact,
    )

    config = config or WorldConfig()
    writer = WorldArtifactWriter(
        path, seed=config.seed, fingerprint=build_fingerprint(config)
    )
    try:
        WorldBuilder(config, artifact_writer=writer).build()
    except BaseException:
        writer.abort()
        raise
    return load_world_artifact(path)
