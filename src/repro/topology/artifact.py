"""Binary world artifacts: disk-bounded worlds, mmap'd and lazily loaded.

The object graph a :class:`~repro.topology.entities.World` materialises —
one ``Router`` per router, one ``Subnet`` per /64, a resolution index of
dict tables — caps world size at available RAM twice over: once while the
generator builds it and once more per shard worker when the sharded
runner pickles the world into every process.  This module removes both
walls:

* :class:`WorldArtifactWriter` packs routers, subnets, hosts and the
  resolution index into flat little-endian sections of one versioned
  file.  The generator streams periphery entities into it *as they are
  finished* (see ``build_world_artifact``), so generation peak RSS is
  bounded by the per-AS working set, not the world size.
* :func:`load_world_artifact` memory-maps the file and returns a
  ``World`` whose ``routers``/``subnets`` are lazy read-only maps
  (entities materialise on first touch and are cached by identity) and
  whose ``resolution`` is a :class:`~repro.bgp.frozenfib.FrozenLPM`
  whose key columns are zero-copy ``memoryview`` casts straight into the
  mmap — every shard worker shares the same physical pages.
* :class:`WorldRef` is the O(KB) worker bootstrap: the sharded runner
  ships ``(path, fingerprint)`` instead of the pickled world and each
  worker resolves it through a per-process cache
  (:func:`resolve_world_ref`).

File layout (all little-endian, sections 8-byte aligned)::

    header:   magic "SRAWRLD1" | version u16 | section count u16
              | seed i64 | config fingerprint (sha256, 32 bytes)
    table:    per section: name (16s) | offset u64 | length u64
    sections: meta (JSON) | small (pickle of the O(#ASes) parts)
              | routers | router_var | router_index
              | subnets | subnet_hosts | subnet_index | resolution

"Small" parts — ASes, transit paths, infra subnets, loop/alias regions,
the BGP table and the IRR — are O(#ASes) and travel as one pickle
section; the O(#routers) parts are fixed-stride packed records plus u64
word columns.  128-bit addresses are stored as (hi, lo) u64 pairs, the
same packing as the columnar probe path.

Determinism contract: ``load_world_artifact(save_world(w)).`` scans
byte-identically to ``w`` — entity field values round-trip exactly
(ints and IEEE doubles, no text formats), map iteration orders are
preserved, and the frozen resolution index is pinned bit-identical to
the mutable one.  tests/test_artifact.py holds the pins.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import pickle
import shutil
import struct
import sys
from array import array
from bisect import bisect_left, bisect_right
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..addr.ipv6 import IPv6Prefix
from ..bgp.frozenfib import FrozenLPM, FrozenRow
from .entities import (
    EntryKind,
    ResolutionEntry,
    Router,
    Subnet,
    World,
)
from .profiles import VendorProfile, vendor_by_name

__all__ = [
    "ArtifactError",
    "WorldArtifactWriter",
    "WorldRef",
    "build_fingerprint",
    "load_world_artifact",
    "resolve_world_ref",
    "save_world",
]

_MAGIC = b"SRAWRLD1"
_VERSION = 1
_HEADER = struct.Struct("<8sHHq32s")
_SECTION = struct.Struct("<16sQQ")
_LO = (1 << 64) - 1

# The artifact stores raw u64 columns read back through memoryview casts,
# which use native byte order; the packed structs are explicitly
# little-endian.  Both agree only on little-endian hosts (every platform
# this project targets); refuse early elsewhere rather than mis-read.
if sys.byteorder != "little":  # pragma: no cover - LE-only project
    raise ImportError("world artifacts require a little-endian platform")

_SECTION_NAMES = (
    "meta",
    "small",
    "routers",
    "router_var",
    "router_index",
    "subnets",
    "subnet_hosts",
    "subnet_index",
    "resolution",
)

# Router fixed record: id, asn, country idx, vendor idx, flags,
# loopback (hi, lo), peering LAN address (hi, lo), replication factor,
# background error load, interface var (word offset, count), subnet
# interface var (word offset, count).
_ROUTER = struct.Struct("<qqHHHQQQQddQIQI")
_RF_REPLIES_FROM_PEERING = 1 << 0
_RF_ANSWERS_DIRECT_PING = 1 << 1
_RF_UNSTABLE_REPLY_SOURCE = 1 << 2
_RF_IS_BORDER = 1 << 3
_RF_ERRORS_FROM_PRIMARY = 1 << 4
_RF_SRA_FROM_PRIMARY = 1 << 5
_RF_EMITS_UNREACHABLES = 1 << 6
_RF_HAS_PEERING = 1 << 7

# Subnet fixed record: network (hi, lo), asn, router id, router interface
# (hi, lo), flags, death epoch, host (count, word offset).
_SUBNET = struct.Struct("<QQqqQQBqIQ")
_SF_ALIASED = 1 << 0
_SF_FLAKY = 1 << 1
_SF_HAS_DEATH = 1 << 2

# Resolution per-length block header: length u32, pad u32, entry count u64
# — followed by hi words, lo words, refs (i64), kind bytes (padded to 8).
_RES_BLOCK = struct.Struct("<IIQ")
_KIND_CODES = {
    EntryKind.SUBNET: 0,
    EntryKind.ALIAS: 1,
    EntryKind.LOOP: 2,
    EntryKind.INFRA: 3,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


class ArtifactError(RuntimeError):
    """A world artifact is missing, malformed, or mismatched."""


def build_fingerprint(config) -> bytes:
    """Digest binding an artifact to the exact generator configuration.

    ``repr`` of the (slots) config dataclass covers every knob including
    the prior tables; two configs with equal reprs generate identical
    worlds, which is precisely the guarantee a resuming loader needs.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).digest()


def _pad8(n: int) -> int:
    return (8 - n % 8) % 8


# --------------------------------------------------------------------- #
# writer
# --------------------------------------------------------------------- #


class WorldArtifactWriter:
    """Incremental packer for one world artifact.

    ``add_router`` / ``add_subnet`` append to spill files immediately —
    callers drop the objects afterwards, which is what keeps generation
    RSS flat.  ``add_resolution`` accumulates compact per-length key
    columns (sorted and de-duplicated keep-last at finalize, replicating
    dict-insert override semantics).  ``finalize`` assembles the final
    file atomically (temp + rename).
    """

    def __init__(self, path: str | Path, *, seed: int, fingerprint: bytes) -> None:
        if len(fingerprint) != 32:
            raise ValueError("fingerprint must be a 32-byte digest")
        self.path = Path(path)
        self.seed = seed
        self.fingerprint = fingerprint
        self.path.parent.mkdir(parents=True, exist_ok=True)
        stamp = f".tmp-{os.getpid()}"
        self._spill_paths = {
            name: self.path.with_name(self.path.name + f"{stamp}-{name}")
            for name in ("routers", "router_var", "subnets", "subnet_hosts")
        }
        self._spill = {
            name: io.BufferedWriter(open(p, "wb", buffering=0))
            for name, p in self._spill_paths.items()
        }
        self._final_tmp = self.path.with_name(self.path.name + f"{stamp}-final")
        self._router_rows = 0
        self._router_index = array("q")
        self._var_words = 0
        self._subnet_rows = 0
        self._host_words = 0
        self._subnet_hi = array("Q")
        self._subnet_lo = array("Q")
        # length -> (hi, lo, kinds, refs) appended in registration order
        self._res: dict[int, tuple[array, array, bytearray, array]] = {}
        self._strings: dict[str, dict[str, int]] = {
            "countries": {},
            "vendors": {},
        }
        self._finalized = False

    # ---------------- interning ---------------- #

    def _intern(self, table: str, name: str) -> int:
        strings = self._strings[table]
        idx = strings.get(name)
        if idx is None:
            idx = len(strings)
            if idx > 0xFFFF:
                raise ArtifactError(f"too many distinct {table}")
            strings[name] = idx
        return idx

    # ---------------- entity packing ---------------- #

    def add_router(self, router: Router) -> int:
        """Pack one finished router; returns its row ordinal."""
        var = array("Q")
        iface_off = self._var_words
        for address in router.interface_addresses:
            var.append(address >> 64)
            var.append(address & _LO)
        subif_off = iface_off + len(var)
        for network, iface in router.subnet_interfaces.items():
            var.append(network >> 64)
            var.append(network & _LO)
            var.append(iface >> 64)
            var.append(iface & _LO)
        flags = 0
        if router.replies_from_peering:
            flags |= _RF_REPLIES_FROM_PEERING
        if router.answers_direct_ping:
            flags |= _RF_ANSWERS_DIRECT_PING
        if router.unstable_reply_source:
            flags |= _RF_UNSTABLE_REPLY_SOURCE
        if router.is_border:
            flags |= _RF_IS_BORDER
        if router.errors_from_primary:
            flags |= _RF_ERRORS_FROM_PRIMARY
        if router.sra_from_primary:
            flags |= _RF_SRA_FROM_PRIMARY
        if router.emits_unreachables:
            flags |= _RF_EMITS_UNREACHABLES
        peering = router.peering_lan_address
        if peering is not None:
            flags |= _RF_HAS_PEERING
        else:
            peering = 0
        record = _ROUTER.pack(
            router.router_id,
            router.asn,
            self._intern("countries", router.country),
            self._intern("vendors", router.vendor.name),
            flags,
            router.loopback >> 64,
            router.loopback & _LO,
            peering >> 64,
            peering & _LO,
            router.replication_factor,
            router.background_error_load,
            iface_off,
            len(router.interface_addresses),
            subif_off,
            len(router.subnet_interfaces),
        )
        self._spill["routers"].write(record)
        self._spill["router_var"].write(var.tobytes())
        self._var_words += len(var)
        index = self._router_index
        slot = router.router_id - 1
        if slot < 0:
            raise ArtifactError(f"router id {router.router_id} out of range")
        while len(index) <= slot:
            index.append(-1)
        index[slot] = self._router_rows
        row = self._router_rows
        self._router_rows += 1
        return row

    def add_subnet(self, subnet: Subnet) -> int:
        """Pack one subnet (row order == registration/iteration order)."""
        hosts = array("Q")
        host_off = self._host_words
        for host in subnet.hosts:
            hosts.append(host >> 64)
            hosts.append(host & _LO)
        flags = 0
        if subnet.aliased:
            flags |= _SF_ALIASED
        if subnet.flaky:
            flags |= _SF_FLAKY
        death = subnet.death_epoch
        if death is not None:
            flags |= _SF_HAS_DEATH
        else:
            death = 0
        network = subnet.prefix.network
        record = _SUBNET.pack(
            network >> 64,
            network & _LO,
            subnet.asn,
            subnet.router_id,
            subnet.router_interface >> 64,
            subnet.router_interface & _LO,
            flags,
            death,
            len(subnet.hosts),
            host_off,
        )
        self._spill["subnets"].write(record)
        self._spill["subnet_hosts"].write(hosts.tobytes())
        self._host_words += len(hosts)
        self._subnet_hi.append(network >> 64)
        self._subnet_lo.append(network & _LO)
        row = self._subnet_rows
        self._subnet_rows += 1
        return row

    def add_resolution(self, prefix: IPv6Prefix, kind: EntryKind, ref: int) -> None:
        """Record one resolution entry, in registration order.

        ``ref`` points into the payload's home collection: subnet row for
        SUBNET, list index for LOOP/ALIAS, ignored (-1) for INFRA, whose
        payload is keyed by the prefix network itself.
        """
        block = self._res.get(prefix.length)
        if block is None:
            block = (array("Q"), array("Q"), bytearray(), array("q"))
            self._res[prefix.length] = block
        hi, lo, kinds, refs = block
        hi.append(prefix.network >> 64)
        lo.append(prefix.network & _LO)
        kinds.append(_KIND_CODES[kind])
        refs.append(ref)

    # ---------------- finalize ---------------- #

    def _resolution_bytes(self) -> bytes:
        out = bytearray()
        out += struct.pack("<I", len(self._res))
        out += b"\0" * 4  # keep following blocks 8-aligned
        for length in sorted(self._res, reverse=True):
            hi, lo, kinds, refs = self._res[length]
            order = sorted(
                range(len(hi)), key=lambda i: (hi[i], lo[i], i)
            )
            # Keep-last dedupe: a later registration of the same network
            # overwrites an earlier one, exactly like dict insert in the
            # mutable resolution index.
            kept: list[int] = []
            for i in order:
                if kept and hi[kept[-1]] == hi[i] and lo[kept[-1]] == lo[i]:
                    kept[-1] = i
                else:
                    kept.append(i)
            out += _RES_BLOCK.pack(length, 0, len(kept))
            out += array("Q", (hi[i] for i in kept)).tobytes()
            out += array("Q", (lo[i] for i in kept)).tobytes()
            out += array("q", (refs[i] for i in kept)).tobytes()
            kind_bytes = bytes(kinds[i] for i in kept)
            out += kind_bytes
            out += b"\0" * _pad8(len(kind_bytes))
        return bytes(out)

    def _subnet_index_bytes(self) -> bytes:
        hi, lo = self._subnet_hi, self._subnet_lo
        order = sorted(range(len(hi)), key=lambda i: (hi[i], lo[i], i))
        kept: list[int] = []
        for i in order:
            if kept and hi[kept[-1]] == hi[i] and lo[kept[-1]] == lo[i]:
                kept[-1] = i  # keep-last: later registration wins
            else:
                kept.append(i)
        out = bytearray()
        out += struct.pack("<Q", len(kept))
        out += array("Q", (hi[i] for i in kept)).tobytes()
        out += array("Q", (lo[i] for i in kept)).tobytes()
        out += array("q", kept).tobytes()
        return bytes(out)

    def finalize(self, world: World) -> Path:
        """Write the final artifact from the spilled sections plus the
        world's remaining (small) parts; atomic temp + rename."""
        if self._finalized:
            raise ArtifactError("writer already finalized")
        self._finalized = True
        for handle in self._spill.values():
            handle.flush()
            handle.close()
        countries = [None] * len(self._strings["countries"])
        for name, idx in self._strings["countries"].items():
            countries[idx] = name
        vendors = [None] * len(self._strings["vendors"])
        for name, idx in self._strings["vendors"].items():
            vendors[idx] = name
        meta = {
            "seed": self.seed,
            "packet_loss": world.packet_loss,
            "router_rows": self._router_rows,
            "router_id_span": len(self._router_index),
            "subnet_rows": self._subnet_rows,
            "countries": countries,
            "vendors": vendors,
        }
        small = {
            "ases": world.ases,
            "paths": world.paths,
            "infra_subnets": world.infra_subnets,
            "loop_regions": world.loop_regions,
            "alias_regions": world.alias_regions,
            "bgp": world.bgp,
            "irr": world.irr,
            "vantage": world.vantage,
        }
        payloads: dict[str, bytes | Path] = {
            "meta": json.dumps(meta, separators=(",", ":")).encode("utf-8"),
            "small": pickle.dumps(small, protocol=pickle.HIGHEST_PROTOCOL),
            "routers": self._spill_paths["routers"],
            "router_var": self._spill_paths["router_var"],
            "router_index": self._router_index.tobytes(),
            "subnets": self._spill_paths["subnets"],
            "subnet_hosts": self._spill_paths["subnet_hosts"],
            "subnet_index": self._subnet_index_bytes(),
            "resolution": self._resolution_bytes(),
        }
        table: list[tuple[str, int, int]] = []
        header_size = _HEADER.size + len(_SECTION_NAMES) * _SECTION.size
        try:
            with open(self._final_tmp, "wb") as out:
                out.write(b"\0" * (header_size + _pad8(header_size)))
                for name in _SECTION_NAMES:
                    payload = payloads[name]
                    offset = out.tell()
                    if isinstance(payload, Path):
                        with open(payload, "rb") as spill:
                            shutil.copyfileobj(spill, out, 1 << 20)
                    else:
                        out.write(payload)
                    length = out.tell() - offset
                    table.append((name, offset, length))
                    out.write(b"\0" * _pad8(length))
                out.seek(0)
                out.write(
                    _HEADER.pack(
                        _MAGIC,
                        _VERSION,
                        len(table),
                        self.seed,
                        self.fingerprint,
                    )
                )
                for name, offset, length in table:
                    out.write(
                        _SECTION.pack(name.encode("ascii"), offset, length)
                    )
                out.flush()
                os.fsync(out.fileno())
            os.replace(self._final_tmp, self.path)
        finally:
            self._cleanup()
        return self.path

    def abort(self) -> None:
        """Close and remove every temp file (generation failed)."""
        if not self._finalized:
            self._finalized = True
            for handle in self._spill.values():
                try:
                    handle.close()
                except OSError:
                    pass
        self._cleanup()

    def _cleanup(self) -> None:
        for spill in self._spill_paths.values():
            try:
                os.unlink(spill)
            except OSError:
                pass
        try:
            os.unlink(self._final_tmp)
        except OSError:
            pass


def save_world(
    world: World, path: str | Path, *, fingerprint: bytes | None = None
) -> Path:
    """Pack a fully-built in-memory world into an artifact file.

    The streamed generator path (``build_world_artifact``) never holds
    the whole world; this eager variant serves round-trip tests and
    converting existing worlds.  Iteration orders of ``routers`` and
    ``subnets`` are preserved exactly.
    """
    if fingerprint is None:
        fingerprint = hashlib.sha256(
            f"world-seed-{world.seed}".encode("ascii")
        ).digest()
    writer = WorldArtifactWriter(path, seed=world.seed, fingerprint=fingerprint)
    try:
        subnet_rows: dict[int, int] = {}
        for subnet in world.subnets.values():
            subnet_rows[subnet.prefix.network] = writer.add_subnet(subnet)
        for router in world.routers.values():
            writer.add_router(router)
        loop_rows = {id(r): i for i, r in enumerate(world.loop_regions)}
        alias_rows = {id(r): i for i, r in enumerate(world.alias_regions)}
        for prefix, entry in world.resolution.items():
            if entry.kind is EntryKind.SUBNET:
                ref = subnet_rows[prefix.network]
            elif entry.kind is EntryKind.LOOP:
                ref = loop_rows[id(entry.payload)]
            elif entry.kind is EntryKind.ALIAS:
                ref = alias_rows[id(entry.payload)]
            else:
                ref = -1
            writer.add_resolution(prefix, entry.kind, ref)
        return writer.finalize(world)
    except BaseException:
        writer.abort()
        raise


# --------------------------------------------------------------------- #
# reader
# --------------------------------------------------------------------- #


class _ArtifactReader:
    """Shared decode state: the mmap, section views, and entity caches.

    Entity caches are keyed by row and grow only with *touched* entities
    — the property that lets a million-router world scan in a bounded
    heap.  The same cache backs the lazy maps and the resolution values,
    so payload identity is stable everywhere (the engine keys per-batch
    plans by ``id(subnet)``).
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        try:
            with open(path, "rb") as handle:
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"cannot map world artifact {path}: {exc}") from exc
        view = memoryview(self._mmap)
        if len(view) < _HEADER.size:
            raise ArtifactError(f"{path}: truncated artifact header")
        magic, version, count, seed, fingerprint = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ArtifactError(f"{path}: not a world artifact")
        if version != _VERSION:
            raise ArtifactError(
                f"{path}: artifact version {version}, expected {_VERSION}"
            )
        self.seed = seed
        self.fingerprint = fingerprint
        self._view = view
        sections: dict[str, tuple[int, int]] = {}
        base = _HEADER.size
        for i in range(count):
            raw, offset, length = _SECTION.unpack_from(
                view, base + i * _SECTION.size
            )
            sections[raw.rstrip(b"\0").decode("ascii")] = (offset, length)
        missing = set(_SECTION_NAMES) - set(sections)
        if missing:
            raise ArtifactError(f"{path}: missing sections {sorted(missing)}")
        self._sections = sections
        self.meta = json.loads(bytes(self._section("meta")))
        self.small = pickle.loads(self._section("small"))
        self.countries: list[str] = self.meta["countries"]
        self.vendors: list[VendorProfile] = [
            vendor_by_name(name) for name in self.meta["vendors"]
        ]
        self._routers_off = sections["routers"][0]
        self._subnets_off = sections["subnets"][0]
        self.router_rows: int = self.meta["router_rows"]
        self.subnet_rows: int = self.meta["subnet_rows"]
        self._router_var = self._words("router_var", "Q")
        self._router_index = self._words("router_index", "q")
        self._hosts = self._words("subnet_hosts", "Q")
        index = self._section("subnet_index")
        (index_count,) = struct.unpack_from("<Q", index, 0)
        word = 8
        hi_off = word
        lo_off = hi_off + index_count * word
        row_off = lo_off + index_count * word
        self._subnet_key_hi = index[hi_off:lo_off].cast("Q")
        self._subnet_key_lo = index[lo_off:row_off].cast("Q")
        self._subnet_key_row = index[row_off : row_off + index_count * word].cast("q")
        self._router_cache: dict[int, Router] = {}
        self._subnet_cache: dict[int, Subnet] = {}

    def _section(self, name: str) -> memoryview:
        offset, length = self._sections[name]
        return self._view[offset : offset + length]

    def _words(self, name: str, typecode: str) -> memoryview:
        return self._section(name).cast(typecode)

    # ---------------- routers ---------------- #

    def router(self, router_id: int) -> Router:
        cached = self._router_cache.get(router_id)
        if cached is not None:
            return cached
        slot = router_id - 1
        if not 0 <= slot < len(self._router_index):
            raise KeyError(router_id)
        row = self._router_index[slot]
        if row < 0:
            raise KeyError(router_id)
        return self._router_at(row)

    def router_id_at(self, row: int) -> int:
        return _ROUTER.unpack_from(self._view, self._routers_off + row * _ROUTER.size)[0]

    def _router_at(self, row: int) -> Router:
        (
            router_id,
            asn,
            country_idx,
            vendor_idx,
            flags,
            loop_hi,
            loop_lo,
            peer_hi,
            peer_lo,
            replication,
            background,
            iface_off,
            iface_count,
            subif_off,
            subif_count,
        ) = _ROUTER.unpack_from(self._view, self._routers_off + row * _ROUTER.size)
        var = self._router_var
        interfaces = [
            (var[iface_off + 2 * k] << 64) | var[iface_off + 2 * k + 1]
            for k in range(iface_count)
        ]
        subnet_interfaces: dict[int, int] = {}
        base = subif_off
        for _ in range(subif_count):
            network = (var[base] << 64) | var[base + 1]
            subnet_interfaces[network] = (var[base + 2] << 64) | var[base + 3]
            base += 4
        router = Router(
            router_id=router_id,
            asn=asn,
            country=self.countries[country_idx],
            vendor=self.vendors[vendor_idx],
            loopback=(loop_hi << 64) | loop_lo,
            interface_addresses=interfaces,
            subnet_interfaces=subnet_interfaces,
            peering_lan_address=(
                (peer_hi << 64) | peer_lo if flags & _RF_HAS_PEERING else None
            ),
            replies_from_peering=bool(flags & _RF_REPLIES_FROM_PEERING),
            answers_direct_ping=bool(flags & _RF_ANSWERS_DIRECT_PING),
            unstable_reply_source=bool(flags & _RF_UNSTABLE_REPLY_SOURCE),
            is_border=bool(flags & _RF_IS_BORDER),
            errors_from_primary=bool(flags & _RF_ERRORS_FROM_PRIMARY),
            sra_from_primary=bool(flags & _RF_SRA_FROM_PRIMARY),
            emits_unreachables=bool(flags & _RF_EMITS_UNREACHABLES),
            replication_factor=replication,
            background_error_load=background,
        )
        self._router_cache[router.router_id] = router
        return router

    # ---------------- subnets ---------------- #

    def subnet_row_of(self, network: int) -> int:
        """Row for a /64 network via the sorted index, or -1."""
        hi = network >> 64
        lo = network & _LO
        keys_hi = self._subnet_key_hi
        i = bisect_left(keys_hi, hi)
        n = len(keys_hi)
        if i >= n or keys_hi[i] != hi:
            return -1
        keys_lo = self._subnet_key_lo
        if keys_lo[i] == lo:
            return self._subnet_key_row[i]
        j = bisect_right(keys_hi, hi, i)
        k = bisect_left(keys_lo, lo, i, j)
        if k < j and keys_lo[k] == lo:
            return self._subnet_key_row[k]
        return -1

    def subnet(self, row: int) -> Subnet:
        cached = self._subnet_cache.get(row)
        if cached is not None:
            return cached
        (
            net_hi,
            net_lo,
            asn,
            router_id,
            iface_hi,
            iface_lo,
            flags,
            death,
            host_count,
            host_off,
        ) = _SUBNET.unpack_from(self._view, self._subnets_off + row * _SUBNET.size)
        words = self._hosts
        hosts = tuple(
            (words[host_off + 2 * k] << 64) | words[host_off + 2 * k + 1]
            for k in range(host_count)
        )
        subnet = Subnet(
            prefix=IPv6Prefix((net_hi << 64) | net_lo, 64),
            asn=asn,
            router_id=router_id,
            router_interface=(iface_hi << 64) | iface_lo,
            hosts=hosts,
            aliased=bool(flags & _SF_ALIASED),
            flaky=bool(flags & _SF_FLAKY),
            death_epoch=death if flags & _SF_HAS_DEATH else None,
        )
        self._subnet_cache[row] = subnet
        return subnet

    def subnet_network_at(self, row: int) -> int:
        net_hi, net_lo = struct.unpack_from(
            "<QQ", self._view, self._subnets_off + row * _SUBNET.size
        )
        return (net_hi << 64) | net_lo

    # ---------------- resolution ---------------- #

    def resolution_rows(self, world: World) -> list[FrozenRow]:
        section = self._section("resolution")
        (num_lengths,) = struct.unpack_from("<I", section, 0)
        offset = 8
        rows: list[FrozenRow] = []
        for _ in range(num_lengths):
            length, _pad, count = _RES_BLOCK.unpack_from(section, offset)
            offset += _RES_BLOCK.size
            hi = section[offset : offset + count * 8].cast("Q")
            offset += count * 8
            lo = section[offset : offset + count * 8].cast("Q")
            offset += count * 8
            refs = section[offset : offset + count * 8].cast("q")
            offset += count * 8
            kinds = section[offset : offset + count]
            offset += count + _pad8(count)
            rows.append(
                FrozenRow(
                    length, hi, lo, _LazyEntries(self, world, hi, lo, kinds, refs)
                )
            )
        return rows


class _LazyEntries:
    """Value column of one frozen-resolution row: entries materialise on
    first access and stay cached (stable identity)."""

    __slots__ = ("_reader", "_world", "_hi", "_lo", "_kinds", "_refs", "_cache")

    def __init__(self, reader, world, hi, lo, kinds, refs) -> None:
        self._reader = reader
        self._world = world
        self._hi = hi
        self._lo = lo
        self._kinds = kinds
        self._refs = refs
        self._cache: dict[int, ResolutionEntry] = {}

    def __len__(self) -> int:
        return len(self._kinds)

    def __getitem__(self, i: int) -> ResolutionEntry:
        entry = self._cache.get(i)
        if entry is None:
            kind = _CODE_KINDS[self._kinds[i]]
            ref = self._refs[i]
            if kind is EntryKind.SUBNET:
                payload = self._reader.subnet(ref)
            elif kind is EntryKind.LOOP:
                payload = self._world.loop_regions[ref]
            elif kind is EntryKind.ALIAS:
                payload = self._world.alias_regions[ref]
            else:  # INFRA: keyed by its own network
                network = (self._hi[i] << 64) | self._lo[i]
                payload = self._world.infra_subnets[network]
            entry = ResolutionEntry(kind, payload)
            self._cache[i] = entry
        return entry


class LazyRouterMap(Mapping):
    """Read-only ``{router_id: Router}`` over the artifact.

    Lookup materialises (and caches) one router; iteration follows the
    original insertion order so loaded worlds behave byte-identically to
    built ones wherever order is observable.
    """

    __slots__ = ("_reader",)

    def __init__(self, reader: _ArtifactReader) -> None:
        self._reader = reader

    def __getitem__(self, router_id: int) -> Router:
        return self._reader.router(router_id)

    def __setitem__(self, router_id: int, router: Router) -> None:
        raise TypeError("artifact-backed worlds are read-only")

    def __delitem__(self, router_id: int) -> None:
        raise TypeError("artifact-backed worlds are read-only")

    def __len__(self) -> int:
        return self._reader.router_rows

    def __iter__(self) -> Iterator[int]:
        # Streamed artifacts flush periphery routers before pinned core
        # routers, so row order differs from the builder's creation
        # (== id) order; ids are dense there, making id order exact.
        # Eagerly-saved artifacts preserve insertion order as row order
        # and may be sparse.  Dense id spans take the id path.
        reader = self._reader
        if reader.router_rows == reader.meta["router_id_span"]:
            return iter(range(1, reader.router_rows + 1))
        return (
            reader.router_id_at(row) for row in range(reader.router_rows)
        )


class LazySubnetMap(Mapping):
    """Read-only ``{network: Subnet}`` over the artifact (row order ==
    registration order, duplicate registrations collapse keep-last)."""

    __slots__ = ("_reader",)

    def __init__(self, reader: _ArtifactReader) -> None:
        self._reader = reader

    def __getitem__(self, network: int) -> Subnet:
        row = self._reader.subnet_row_of(network)
        if row < 0:
            raise KeyError(network)
        return self._reader.subnet(row)

    def __setitem__(self, network: int, subnet: Subnet) -> None:
        raise TypeError("artifact-backed worlds are read-only")

    def __delitem__(self, network: int) -> None:
        raise TypeError("artifact-backed worlds are read-only")

    def __len__(self) -> int:
        return len(self._reader._subnet_key_row)

    def __iter__(self) -> Iterator[int]:
        reader = self._reader
        if len(reader._subnet_key_row) == reader.subnet_rows:
            # No duplicate registrations (the usual case): plain row walk.
            return (
                reader.subnet_network_at(row)
                for row in range(reader.subnet_rows)
            )
        return self._iter_deduped()

    def _iter_deduped(self) -> Iterator[int]:
        # Dict semantics under overwrite: first insertion position, so
        # yield each network at its first-seen row only.
        reader = self._reader
        seen: set[int] = set()
        for row in range(reader.subnet_rows):
            network = reader.subnet_network_at(row)
            if network not in seen:
                seen.add(network)
                yield network


# --------------------------------------------------------------------- #
# loading and worker bootstrap
# --------------------------------------------------------------------- #


def load_world_artifact(path: str | Path) -> World:
    """Memory-map an artifact and return its (lazy, read-only) world."""
    path = Path(path)
    reader = _ArtifactReader(path)
    small = reader.small
    bgp = small["bgp"]
    bgp.freeze_lookups()
    world = World(
        seed=reader.seed,
        bgp=bgp,
        irr=small["irr"],
        ases=small["ases"],
        routers=LazyRouterMap(reader),  # type: ignore[arg-type]
        subnets=LazySubnetMap(reader),  # type: ignore[arg-type]
        loop_regions=small["loop_regions"],
        alias_regions=small["alias_regions"],
        infra_subnets=small["infra_subnets"],
        paths=small["paths"],
        vantage=small["vantage"],
        packet_loss=reader.meta["packet_loss"],
        artifact_path=str(path),
        artifact_fingerprint=reader.fingerprint,
    )
    world.resolution = FrozenLPM(reader.resolution_rows(world))  # type: ignore[assignment]
    return world


@dataclass(frozen=True, slots=True)
class WorldRef:
    """O(KB) world bootstrap for shard workers: path + fingerprint.

    The sharded runner ships this instead of the pickled world; workers
    resolve it through :func:`resolve_world_ref`, which mmaps the
    artifact once per process — the OS page cache shares the physical
    pages across every worker on the host.
    """

    path: str
    fingerprint: bytes | None = None


_RESOLVED: dict[str, World] = {}


def resolve_world_ref(ref: WorldRef) -> World:
    """Per-process memoised artifact load, with fingerprint verification."""
    world = _RESOLVED.get(ref.path)
    if world is None:
        world = load_world_artifact(ref.path)
        _RESOLVED[ref.path] = world
    if (
        ref.fingerprint is not None
        and world.artifact_fingerprint != ref.fingerprint
    ):
        raise ArtifactError(
            f"{ref.path}: artifact fingerprint changed since the scan "
            "was scheduled (world rebuilt with a different config?)"
        )
    return world


def world_payload(world: World) -> "World | WorldRef":
    """What the sharded runner should ship to process-pool workers:
    a :class:`WorldRef` for artifact-backed worlds (O(KB)), the world
    itself (pickled by the pool) otherwise."""
    if world.artifact_path is not None:
        return WorldRef(world.artifact_path, world.artifact_fingerprint)
    return world
