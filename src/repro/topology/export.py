"""Artifact export: write a world's datasets the way the paper released
its artifacts (Zenodo DOI 10.5281/zenodo.17210254).

``export_artifacts`` writes a directory of plain-text datasets —
BGP dump, IRR database, hitlist, aliased-prefix list, GeoIP and AS-type
tables, plus a JSON summary — and ``load_artifacts`` reads them back into
the corresponding library objects, so downstream consumers never need the
generator at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..bgp.dump import read_dump, write_dump
from ..bgp.table import BGPTable
from ..hitlist.aliases import AliasedPrefixList
from ..hitlist.hitlist import Hitlist
from ..irr.database import IRRDatabase
from ..metadata.astype import ASTypeDatabase
from ..metadata.geoip import GeoIPDatabase
from .entities import World

BGP_FILE = "bgp.dump"
IRR_FILE = "route6.db"
HITLIST_FILE = "hitlist.txt"
ALIASES_FILE = "aliased-prefixes.txt"
GEOIP_FILE = "geoip.txt"
ASTYPE_FILE = "astypes.txt"
SUMMARY_FILE = "summary.json"


@dataclass(slots=True)
class ArtifactBundle:
    """The re-loaded artifact set."""

    bgp: BGPTable
    irr: IRRDatabase
    hitlist: Hitlist | None
    aliases: AliasedPrefixList
    geoip: GeoIPDatabase
    astypes: ASTypeDatabase
    summary: dict


def export_artifacts(
    world: World,
    directory: str | Path,
    *,
    hitlist: Hitlist | None = None,
    alias_list: AliasedPrefixList | None = None,
) -> Path:
    """Write all world-derived datasets into ``directory``.

    ``hitlist``/``alias_list`` default to the world's ground truth when
    not supplied (a community hitlist from :mod:`repro.datasets.tum` is
    usually passed instead).
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    write_dump(
        list(world.bgp),
        path / BGP_FILE,
        header=f"synthetic BGP table, seed={world.seed}",
    )
    world.irr.save(path / IRR_FILE)

    if hitlist is None:
        hitlist = Hitlist(name="ground-truth-hosts")
        hitlist.extend(world.all_hosts())
    hitlist.save(path / HITLIST_FILE)

    if alias_list is None:
        alias_list = AliasedPrefixList()
        for region in world.alias_regions:
            alias_list.add(region.prefix)
        for subnet in world.subnets.values():
            if subnet.aliased:
                alias_list.add(subnet.prefix)
    alias_list.save(path / ALIASES_FILE)

    GeoIPDatabase.from_world(world).save(path / GEOIP_FILE)
    ASTypeDatabase.from_world(world).save(path / ASTYPE_FILE)

    summary = {
        "seed": world.seed,
        "ases": len(world.ases),
        "announcements": len(world.bgp),
        "route6_objects": len(world.irr),
        "active_subnets": len(world.subnets),
        "routers": len(world.routers),
        "hosts": sum(len(s.hosts) for s in world.subnets.values()),
        "loop_regions": len(world.loop_regions),
        "looping_slash48s": sum(
            region.slash48_count() for region in world.loop_regions
        ),
        "alias_regions": len(world.alias_regions),
        "hitlist_entries": len(hitlist),
        "aliased_prefixes": len(alias_list),
    }
    (path / SUMMARY_FILE).write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return path


def load_artifacts(directory: str | Path) -> ArtifactBundle:
    """Read an exported artifact directory back into library objects."""
    path = Path(directory)
    hitlist_path = path / HITLIST_FILE
    return ArtifactBundle(
        bgp=read_dump(path / BGP_FILE),
        irr=IRRDatabase.load(path / IRR_FILE),
        hitlist=Hitlist.load(hitlist_path) if hitlist_path.exists() else None,
        aliases=AliasedPrefixList.load(path / ALIASES_FILE),
        geoip=GeoIPDatabase.load(path / GEOIP_FILE),
        astypes=ASTypeDatabase.load(path / ASTYPE_FILE),
        summary=json.loads((path / SUMMARY_FILE).read_text(encoding="utf-8")),
    )
