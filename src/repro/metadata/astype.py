"""ASN → network-type database, IPinfo style (Appendix E / Fig. 10)."""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable

from ..topology.entities import ASType, World


class ASTypeDatabase:
    """ASN → :class:`ASType` lookups."""

    def __init__(self, mapping: dict[int, ASType] | None = None) -> None:
        self._mapping: dict[int, ASType] = dict(mapping or {})

    def add(self, asn: int, as_type: ASType) -> None:
        self._mapping[asn] = as_type

    def __len__(self) -> int:
        return len(self._mapping)

    def type_of(self, asn: int) -> ASType | None:
        return self._mapping.get(asn)

    def type_histogram(
        self, asns: Iterable[int]
    ) -> Counter[str]:
        """Count occurrences per type label ("unknown" when unmapped)."""
        histogram: Counter[str] = Counter()
        for asn in asns:
            as_type = self._mapping.get(asn)
            histogram[as_type.value if as_type else "unknown"] += 1
        return histogram

    @classmethod
    def from_world(cls, world: World) -> "ASTypeDatabase":
        return cls({asn: info.as_type for asn, info in world.ases.items()})

    @classmethod
    def load(cls, path: str | Path) -> "ASTypeDatabase":
        """Load ``<asn> <type>`` lines."""
        database = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                asn_text, _, type_text = text.partition(" ")
                database.add(int(asn_text), ASType(type_text.strip()))
        return database

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for asn in sorted(self._mapping):
                handle.write(f"{asn} {self._mapping[asn].value}\n")
