"""A MaxMind-GeoLite-style country database over prefix ranges.

The paper maps reply sources to countries via the free MaxMind database.
Here the database is *derived from the world* (every AS allocation carries
its AS's country) but exposed through the same interface a GeoIP consumer
would use — per-prefix entries with longest-prefix lookup — so analysis
code never touches topology internals.
"""

from __future__ import annotations

from pathlib import Path

from ..addr.ipv6 import IPv6Prefix
from ..bgp.lpm import LengthIndexedLPM
from ..topology.entities import World


class GeoIPDatabase:
    """Prefix → ISO3 country lookups."""

    def __init__(self) -> None:
        self._lpm: LengthIndexedLPM[str] = LengthIndexedLPM()

    def add(self, prefix: IPv6Prefix, country: str) -> None:
        self._lpm.insert(prefix, country)

    def __len__(self) -> int:
        return len(self._lpm)

    def country_of(self, address: int) -> str | None:
        match = self._lpm.longest_match(address)
        return None if match is None else match[1]

    @classmethod
    def from_world(cls, world: World) -> "GeoIPDatabase":
        """Build the database from every AS's announced prefixes."""
        database = cls()
        for info in world.ases.values():
            for prefix in info.prefixes:
                database.add(prefix, info.country)
        return database

    @classmethod
    def load(cls, path: str | Path) -> "GeoIPDatabase":
        """Load ``<prefix> <ISO3>`` lines."""
        database = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                prefix_text, _, country = text.partition(" ")
                database.add(IPv6Prefix.parse(prefix_text), country.strip())
        return database

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for prefix, country in self._lpm.items():
                handle.write(f"{prefix} {country}\n")


# ISO3 -> continent, for the Fig. 10 per-continent grouping.
CONTINENT_OF: dict[str, str] = {
    "IND": "AS", "CHN": "AS", "JPN": "AS", "KOR": "AS", "IDN": "AS",
    "VNM": "AS", "THA": "AS", "TUR": "AS", "IRN": "AS", "PAK": "AS",
    "BGD": "AS", "LKA": "AS", "MYS": "AS", "SGP": "AS", "PHL": "AS",
    "TWN": "AS", "HKG": "AS", "SAU": "AS", "ARE": "AS", "ISR": "AS",
    "USA": "NA", "CAN": "NA", "MEX": "NA",
    "BRA": "SA", "ARG": "SA", "CHL": "SA", "COL": "SA", "PER": "SA",
    "DEU": "EU", "GBR": "EU", "FRA": "EU", "RUS": "EU", "ITA": "EU",
    "ESP": "EU", "POL": "EU", "NLD": "EU", "CZE": "EU", "SWE": "EU",
    "CHE": "EU", "AUT": "EU", "BEL": "EU", "NOR": "EU", "FIN": "EU",
    "DNK": "EU", "PRT": "EU", "GRC": "EU", "ROU": "EU", "HUN": "EU",
    "UKR": "EU", "IRL": "EU", "SVK": "EU", "BGR": "EU", "HRV": "EU",
    "SRB": "EU", "LTU": "EU", "LVA": "EU", "EST": "EU",
    "ZAF": "AF", "EGY": "AF", "NGA": "AF", "KEN": "AF", "MAR": "AF",
    "AUS": "OC", "NZL": "OC",
}


def continent_of(country: str | None) -> str:
    """Continent code for an ISO3 country ("??" when unknown)."""
    if country is None:
        return "??"
    return CONTINENT_OF.get(country, "??")
