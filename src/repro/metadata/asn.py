"""Address → ASN mapping, RouteViews style.

The paper maps reply sources to origin ASNs with the RouteViews dataset;
the equivalent here is longest-prefix match against the BGP table.  Note
the caveat the paper calls out: SRA replies sourced from peering-LAN
addresses map to the *provider's* ASN, not the responding router's — the
mapping is faithful to BGP, not to router ownership.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ..bgp.table import BGPTable


class ASNMapper:
    """Wraps a BGP table as a metadata service."""

    def __init__(self, bgp: BGPTable) -> None:
        self._bgp = bgp

    def asn_of(self, address: int) -> int | None:
        return self._bgp.origin_of(address)

    def map_many(self, addresses: Iterable[int]) -> dict[int, int]:
        """Map addresses to ASNs, dropping unrouted ones."""
        mapping: dict[int, int] = {}
        for address in addresses:
            asn = self._bgp.origin_of(address)
            if asn is not None:
                mapping[address] = asn
        return mapping

    def asn_histogram(self, addresses: Iterable[int]) -> Counter[int]:
        """How many addresses map to each ASN."""
        histogram: Counter[int] = Counter()
        for address in addresses:
            asn = self._bgp.origin_of(address)
            if asn is not None:
                histogram[asn] += 1
        return histogram

    def top_asns(
        self, addresses: Iterable[int], n: int = 5
    ) -> list[tuple[int, float]]:
        """Top-N ASNs with their share of mapped addresses (Table 3)."""
        histogram = self.asn_histogram(addresses)
        total = sum(histogram.values())
        if total == 0:
            return []
        return [
            (asn, count / total) for asn, count in histogram.most_common(n)
        ]
