"""Metadata services: GeoIP-style country DB, ASN mapping, AS-type DB."""

from .asn import ASNMapper
from .astype import ASTypeDatabase
from .geoip import CONTINENT_OF, GeoIPDatabase, continent_of

__all__ = [
    "ASNMapper",
    "ASTypeDatabase",
    "CONTINENT_OF",
    "GeoIPDatabase",
    "continent_of",
]
